//! Fixed-width table and CSV rendering for the experiment binary (the
//! tables in EXPERIMENTS.md are generated through this module).

/// A simple column-aligned table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let r: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(r.len(), self.header.len(), "row arity mismatch");
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns (markdown-flavored pipes).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, hcell) in self.header.iter().enumerate() {
            width[i] = hcell.chars().count();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                s.push(' ');
                s.push_str(c);
                for _ in c.chars().count()..width[i] {
                    s.push(' ');
                }
                s.push_str(" |");
            }
            s
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push('|');
        for w in &width {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (naive quoting: cells with commas get quoted).
    pub fn to_csv(&self) -> String {
        let esc = |c: &String| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 2 decimals (report convention).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Column label for a nearest-rank quantile (report convention): `p50`,
/// `p99`, `p99.9` — trailing zeros of the fractional percent dropped.
pub fn plabel(q: f64) -> String {
    let pct = q * 100.0;
    if (pct - pct.round()).abs() < 1e-9 {
        format!("p{}", pct.round() as u64)
    } else {
        format!("p{}", format!("{pct:.1}").trim_end_matches('0'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["x", "1"]).row(["longer-name", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[0].contains("name"));
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(["a"]);
        t.row(["x,y"]);
        assert_eq!(t.to_csv(), "a\n\"x,y\"\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn f2_formats() {
        assert_eq!(f2(1.234), "1.23");
    }

    #[test]
    fn plabel_formats_quantiles() {
        assert_eq!(plabel(0.5), "p50");
        assert_eq!(plabel(0.99), "p99");
        assert_eq!(plabel(0.999), "p99.9");
    }
}
