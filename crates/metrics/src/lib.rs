//! # sscc-metrics
//!
//! The experiment harness of the reproduction: every measured quantity the
//! paper defines, plus the sweep machinery to estimate adversarial minima
//! over schedules.
//!
//! * [`runner`] — uniform construction of CC1/CC2/CC3 simulations;
//! * [`campaign`] — sustained-fault/churn campaigns: recovery-time and
//!   safety-violation-window distributions under bombardment;
//! * [`sweep`] — deterministic parallel seed sweeps;
//! * [`degree`] — degree of fair concurrency (Definition 5, Thms 4/5/7/8);
//! * [`waiting`] — waiting time in rounds (Definition 6, Thm 6);
//! * [`throughput`] — meetings/step, live-meeting concurrency, starvation
//!   (the §3.2 fairness-vs-concurrency trade-off, measured);
//! * [`report`] — table/CSV rendering for EXPERIMENTS.md.

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod adversary;
pub mod campaign;
pub mod degree;
pub mod report;
pub mod runner;
pub mod sweep;
pub mod throughput;
pub mod waiting;

pub use adversary::{cc1_starvation_on_fig2, AlternatingAdversary, StarvationOutcome};
pub use campaign::{
    campaign_table, finalize_campaign, run_campaign, run_campaign_chunk, run_campaign_on,
    CampaignConfig, CampaignProgress, CampaignReport, CampaignRow,
};
pub use degree::{degree_row, measure_degree, DegreeConfig, DegreeOutcome, DegreeRow};
pub use report::{f2, plabel, Table};
pub use runner::{build_sim, restore_sim, AlgoKind, AnySim, AnySnapshot, Boot, PolicyKind};
// The shared configuration layer, re-exported so bench/experiment code
// needs a single import for modes and configs.
pub use sscc_core::{
    CommitStrategy, ConfigError, Drain, EngineConfig, EvalPath, Mode, ModeRegistry,
};
pub use sweep::{parallel_fold, parallel_map};
pub use throughput::{measure_throughput, throughput_row, ThroughputOutcome, ThroughputRow};
pub use waiting::{
    measure_waiting, waiting_row, LatencyHistogram, LatencySnapshot, WaitingOutcome, WaitingRow,
};
