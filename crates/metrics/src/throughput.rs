//! Experiment E11: throughput and starvation — the empirical content of the
//! paper's §3.2 discussion ("enforcing fairness decreases concurrency").
//!
//! For each algorithm/topology/load we measure: meetings convened per 1000
//! steps, mean number of simultaneously live meetings, and the starvation
//! profile (minimum participations across professors; CC1 may legitimately
//! starve someone, CC2/CC3 must not).

use crate::runner::{build_sim, AlgoKind, Boot, PolicyKind};
use crate::sweep::parallel_map;
use sscc_hypergraph::Hypergraph;
use std::sync::Arc;

/// Throughput measurement of one run.
#[derive(Clone, Debug, PartialEq)]
pub struct ThroughputOutcome {
    /// Post-initial convenes.
    pub convened: usize,
    /// Steps executed.
    pub steps: u64,
    /// Completed rounds.
    pub rounds: u64,
    /// Mean live meetings, sampled per step.
    pub mean_live: f64,
    /// Minimum participations over professors.
    pub min_participations: u64,
    /// Number of professors with zero participations.
    pub starved: usize,
    /// Specification violations observed (must be 0).
    pub violations: usize,
}

/// Run one throughput measurement.
pub fn measure_throughput(
    h: &Arc<Hypergraph>,
    algo: AlgoKind,
    seed: u64,
    policy: PolicyKind,
    budget: u64,
) -> ThroughputOutcome {
    let mut sim = build_sim(algo, Arc::clone(h), seed, policy, Boot::Clean);
    let mut live_sum: u64 = 0;
    let mut samples: u64 = 0;
    while sim.steps() < budget {
        if !sim.step() {
            break;
        }
        live_sum += sim.live_meeting_count() as u64;
        samples += 1;
    }
    let parts = sim.ledger().participations();
    ThroughputOutcome {
        convened: sim.ledger().convened_count(),
        steps: sim.steps(),
        rounds: sim.rounds(),
        mean_live: if samples == 0 {
            0.0
        } else {
            live_sum as f64 / samples as f64
        },
        min_participations: parts.iter().copied().min().unwrap_or(0),
        starved: parts.iter().filter(|&&c| c == 0).count(),
        violations: sim.monitor().violations().len(),
    }
}

/// One row of the E11 table: a seed-averaged throughput cell.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// Topology label.
    pub name: String,
    /// Algorithm.
    pub algo: AlgoKind,
    /// Mean meetings per 1000 steps.
    pub meetings_per_kstep: f64,
    /// Mean live meetings.
    pub mean_live: f64,
    /// Worst-case starved professors across seeds.
    pub max_starved: usize,
    /// Minimum participations across seeds and professors.
    pub min_participations: u64,
    /// Total violations (must be 0).
    pub violations: usize,
}

/// Sweep seeds for one (topology, algorithm) cell.
pub fn throughput_row(
    name: &str,
    h: &Arc<Hypergraph>,
    algo: AlgoKind,
    policy: PolicyKind,
    seeds: u64,
    budget: u64,
) -> ThroughputRow {
    let outs = parallel_map(0..seeds, |seed| {
        measure_throughput(h, algo, seed, policy, budget)
    });
    let k = outs.len().max(1) as f64;
    ThroughputRow {
        name: name.to_string(),
        algo,
        meetings_per_kstep: outs
            .iter()
            .map(|o| o.convened as f64 * 1000.0 / o.steps.max(1) as f64)
            .sum::<f64>()
            / k,
        mean_live: outs.iter().map(|o| o.mean_live).sum::<f64>() / k,
        max_starved: outs.iter().map(|o| o.starved).max().unwrap_or(0),
        min_participations: outs.iter().map(|o| o.min_participations).min().unwrap_or(0),
        violations: outs.iter().map(|o| o.violations).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sscc_hypergraph::generators;

    #[test]
    fn cc2_no_starvation_on_ring() {
        let h = Arc::new(generators::ring(5, 2));
        let row = throughput_row(
            "ring5",
            &h,
            AlgoKind::Cc2,
            PolicyKind::Eager { max_disc: 1 },
            3,
            25_000,
        );
        assert_eq!(row.violations, 0);
        assert_eq!(row.max_starved, 0, "CC2 must not starve anyone: {row:?}");
        assert!(row.meetings_per_kstep > 0.0);
    }

    #[test]
    fn cc1_throughput_positive() {
        let h = Arc::new(generators::fig1());
        let row = throughput_row(
            "fig1",
            &h,
            AlgoKind::Cc1,
            PolicyKind::Eager { max_disc: 1 },
            3,
            15_000,
        );
        assert_eq!(row.violations, 0);
        assert!(row.meetings_per_kstep > 0.0);
    }

    #[test]
    fn stochastic_load_works() {
        let h = Arc::new(generators::fig2());
        let o = measure_throughput(
            &h,
            AlgoKind::Cc2,
            5,
            PolicyKind::Stochastic {
                p_in: 0.3,
                lo: 1,
                hi: 5,
            },
            10_000,
        );
        assert_eq!(o.violations, 0);
        assert!(o.convened > 0);
    }
}
