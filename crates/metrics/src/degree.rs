//! Experiment E5/E6: the **degree of fair concurrency** (Definition 5,
//! Theorems 4, 5, 7, 8).
//!
//! Protocol, straight from the paper: let every convened meeting last
//! forever (the infinite-meeting environment); the system then reaches a
//! quiescent state in which statuses no longer change (Lemmas 13–17). The
//! degree of fair concurrency is the *minimum*, over computations, of the
//! number of meetings held at quiescence. We approximate the minimum over
//! all computations by the minimum over many seeded daemon schedules, and
//! check it against the exact combinatorial bounds `min|MM ∪ AMM|`
//! (Theorem 4 / 7) and `minMM − MaxMin + 1` (Theorem 5 / 8).

use crate::runner::{build_sim, AlgoKind, Boot, PolicyKind};
use crate::sweep::parallel_map;
use sscc_core::sim::StopReason;
use sscc_hypergraph::{FairnessAnalysis, Hypergraph};
use std::sync::Arc;

/// Configuration of a degree measurement.
#[derive(Clone, Copy, Debug)]
pub struct DegreeConfig {
    /// Step budget per run (quiescence must be reached inside it).
    pub budget: u64,
    /// Number of daemon seeds to sweep.
    pub seeds: u64,
}

impl Default for DegreeConfig {
    fn default() -> Self {
        DegreeConfig {
            budget: 60_000,
            seeds: 32,
        }
    }
}

/// Result of a degree measurement on one topology.
#[derive(Clone, Debug)]
pub struct DegreeOutcome {
    /// Minimum meetings held at quiescence over all quiesced runs.
    pub min_live: usize,
    /// Maximum (for context: how much schedules matter).
    pub max_live: usize,
    /// Runs that actually quiesced within budget.
    pub quiesced: usize,
    /// Total runs.
    pub runs: usize,
}

/// Measure the degree of fair concurrency of `algo` on `h`.
///
/// Uses clean boots (the theorems characterize post-stabilization quiescent
/// states, Lemma 16; with frozen meetings a corrupted substrate would never
/// finish stabilizing, so arbitrary boots measure a different quantity).
pub fn measure_degree(h: &Arc<Hypergraph>, algo: AlgoKind, cfg: &DegreeConfig) -> DegreeOutcome {
    assert!(algo.fair(), "degree of fair concurrency applies to CC2/CC3");
    let results = parallel_map(0..cfg.seeds, |seed| {
        let mut sim = build_sim(
            algo,
            Arc::clone(h),
            seed,
            PolicyKind::InfiniteMeetings,
            Boot::Clean,
        );
        let stop = sim.run(cfg.budget);
        (stop == StopReason::Terminal, sim.live_meeting_count())
    });
    let mut out = DegreeOutcome {
        min_live: usize::MAX,
        max_live: 0,
        quiesced: 0,
        runs: 0,
    };
    for (quiesced, live) in results {
        out.runs += 1;
        if quiesced {
            out.quiesced += 1;
            out.min_live = out.min_live.min(live);
            out.max_live = out.max_live.max(live);
        }
    }
    if out.quiesced == 0 {
        out.min_live = 0;
    }
    out
}

/// A degree measurement joined with the paper's bounds — one row of the
/// E5/E6 tables.
#[derive(Clone, Debug)]
pub struct DegreeRow {
    /// Topology label.
    pub name: String,
    /// Measured minimum meetings at quiescence.
    pub measured_min: usize,
    /// Measured maximum.
    pub measured_max: usize,
    /// Theorem 4 (CC2) or Theorem 7 (CC3) bound: `min|MM ∪ AMM(')|`.
    pub exact_bound: usize,
    /// Theorem 5 (CC2) or Theorem 8 (CC3) closed-form bound.
    pub closed_bound: usize,
    /// `minMM` for context.
    pub min_mm: usize,
    /// Runs that quiesced / total.
    pub quiesced: (usize, usize),
}

impl DegreeRow {
    /// Does the measurement respect the paper's lower bounds?
    pub fn holds(&self) -> bool {
        self.measured_min >= self.exact_bound && self.exact_bound >= self.closed_bound
    }
}

/// Run the full E5/E6 row for one topology.
pub fn degree_row(
    name: &str,
    h: &Arc<Hypergraph>,
    algo: AlgoKind,
    cfg: &DegreeConfig,
) -> DegreeRow {
    let analysis = FairnessAnalysis::compute(h);
    let (exact_bound, closed_bound) = match algo {
        AlgoKind::Cc2 => (analysis.thm4_bound(), analysis.thm5_bound()),
        AlgoKind::Cc3 => (analysis.thm7_bound(), analysis.thm8_bound()),
        AlgoKind::Cc1 => unreachable!("checked by measure_degree"),
    };
    let m = measure_degree(h, algo, cfg);
    DegreeRow {
        name: name.to_string(),
        measured_min: m.min_live,
        measured_max: m.max_live,
        exact_bound,
        closed_bound,
        min_mm: analysis.min_mm,
        quiesced: (m.quiesced, m.runs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sscc_hypergraph::generators;

    fn small_cfg() -> DegreeConfig {
        DegreeConfig {
            budget: 40_000,
            seeds: 8,
        }
    }

    #[test]
    fn cc2_degree_respects_thm4_on_fig2() {
        let h = Arc::new(generators::fig2());
        let row = degree_row("fig2", &h, AlgoKind::Cc2, &small_cfg());
        assert!(row.quiesced.0 > 0, "at least one run quiesced");
        assert!(
            row.holds(),
            "measured {} < bound {} (closed {})",
            row.measured_min,
            row.exact_bound,
            row.closed_bound
        );
    }

    #[test]
    fn cc2_degree_respects_thm4_on_ring() {
        let h = Arc::new(generators::ring(6, 2));
        let row = degree_row("ring6x2", &h, AlgoKind::Cc2, &small_cfg());
        assert!(row.quiesced.0 > 0);
        assert!(row.holds(), "{row:?}");
        // On C6 the degree is at least minMM - MaxMin + 1 = 2 - 2 + 1 = 1.
        assert!(row.measured_min >= 1);
    }

    #[test]
    fn cc3_degree_respects_thm7_on_fig2() {
        let h = Arc::new(generators::fig2());
        let row = degree_row("fig2", &h, AlgoKind::Cc3, &small_cfg());
        assert!(row.quiesced.0 > 0);
        assert!(row.holds(), "{row:?}");
    }

    #[test]
    #[should_panic(expected = "CC2/CC3")]
    fn cc1_has_no_degree() {
        let h = Arc::new(generators::fig2());
        let _ = measure_degree(&h, AlgoKind::Cc1, &small_cfg());
    }
}
