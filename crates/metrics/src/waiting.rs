//! Experiment E7: **waiting time** (Definition 6, Theorem 6) — plus the
//! exact-quantile [`LatencyHistogram`] the open-loop service benchmarks
//! report their request→convene sojourn distributions through.
//!
//! Theorem 6 bounds CC2's waiting time by `O(maxDisc × n)` rounds: after
//! stabilization a token holder keeps the token for `O(maxDisc)` rounds and
//! `O(n)` processes may hold it before a given professor does. We measure,
//! per professor, the largest gap (in *rounds*, the paper's time unit)
//! between successive meeting participations — including the censored
//! initial and final gaps — and report the maximum over professors.

use crate::runner::{build_sim, AlgoKind, Boot, PolicyKind};
use crate::sweep::parallel_map;
use std::sync::Arc;

use sscc_hypergraph::Hypergraph;

/// Waiting-time measurement for one run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaitingOutcome {
    /// Max over professors of the largest participation gap, in rounds.
    pub max_wait_rounds: u64,
    /// Mean (over professors) of their largest gap.
    pub mean_wait_rounds: f64,
    /// Total completed rounds in the run.
    pub total_rounds: u64,
    /// Total post-initial convenes (context: enough samples?).
    pub convened: usize,
}

/// Measure waiting time of `algo` on `h` for one seed.
pub fn measure_waiting(
    h: &Arc<Hypergraph>,
    algo: AlgoKind,
    seed: u64,
    max_disc: u64,
    budget: u64,
) -> WaitingOutcome {
    let mut sim = build_sim(
        algo,
        Arc::clone(h),
        seed,
        PolicyKind::Eager { max_disc },
        Boot::Clean,
    );
    sim.run(budget);
    let n = h.n();
    let end_round = sim.rounds();
    // Participation rounds per professor, from the ledger.
    let mut rounds: Vec<Vec<u64>> = vec![Vec::new(); n];
    for inst in sim.ledger().post_initial_instances() {
        for &p in &inst.participants {
            rounds[p].push(inst.convened_round);
        }
    }
    let mut max_gap = 0u64;
    let mut sum_gap = 0u64;
    for r in &mut rounds {
        r.sort_unstable();
        let mut worst = 0u64;
        let mut prev = 0u64; // gap from the start counts (first wait)
        for &x in r.iter() {
            worst = worst.max(x - prev);
            prev = x;
        }
        worst = worst.max(end_round.saturating_sub(prev)); // censored tail
        max_gap = max_gap.max(worst);
        sum_gap += worst;
    }
    WaitingOutcome {
        max_wait_rounds: max_gap,
        mean_wait_rounds: sum_gap as f64 / n as f64,
        total_rounds: end_round,
        convened: sim.ledger().convened_count(),
    }
}

/// Sample-exact latency distribution: records every observation and answers
/// quantile queries by nearest-rank over the sorted samples. At benchmark
/// sizes (≤ a few hundred thousand sojourns per run) the memory and the
/// sort-on-query cost are negligible, and the quantiles are *exact* —
/// important because the CI latency gate rides them, so bucketing error
/// would either hide regressions or flag phantom ones.
///
/// Recording and querying are split: [`LatencyHistogram::record`] is the
/// `&mut` append path, every query takes `&self` (so a service can expose
/// read-only stats). One-off queries sort a scratch copy; batch several
/// through a [`LatencySnapshot`], which sorts once.
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    samples: Vec<u64>,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation (any unit; the service layer records steps).
    pub fn record(&mut self, v: u64) {
        self.samples.push(v);
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// No observations yet?
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Nearest-rank quantile: the smallest recorded value `v` such that at
    /// least `q × len` observations are ≤ `v`. `q` is clamped to `[0, 1]`;
    /// `quantile(0.5)` is the median, `quantile(1.0)` the maximum. Returns
    /// `None` on an empty histogram.
    ///
    /// Sorts a scratch copy — `O(len log len)` per call. Use
    /// [`LatencyHistogram::snapshot`] when querying several quantiles.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }

    /// Arithmetic mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&v| v as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Largest observation.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// The raw observations, in recording order — the persistence seam
    /// (checkpointed services serialize these and rebuild with
    /// [`LatencyHistogram::from_samples`]).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Rebuild a histogram from previously recorded observations.
    pub fn from_samples(samples: Vec<u64>) -> Self {
        LatencyHistogram { samples }
    }

    /// Finalize the current contents into an immutable, sorted view. The
    /// histogram keeps recording independently afterwards.
    pub fn snapshot(&self) -> LatencySnapshot {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        LatencySnapshot { sorted }
    }
}

/// An immutable, sorted view of a [`LatencyHistogram`] at one instant:
/// every query is `O(1)` (quantiles index the pre-sorted samples).
#[derive(Clone, Debug, Default)]
pub struct LatencySnapshot {
    sorted: Vec<u64>,
}

impl LatencySnapshot {
    /// Number of observations in the snapshot.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// No observations?
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Nearest-rank quantile (see [`LatencyHistogram::quantile`]).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().map(|&v| v as f64).sum::<f64>() / self.sorted.len() as f64
    }

    /// Largest observation.
    pub fn max(&self) -> Option<u64> {
        self.sorted.last().copied()
    }
}

/// One row of the E7 table: waiting time vs `n` and `maxDisc`.
#[derive(Clone, Debug)]
pub struct WaitingRow {
    /// Topology label.
    pub name: String,
    /// Number of professors.
    pub n: usize,
    /// `maxDisc` used.
    pub max_disc: u64,
    /// Worst waiting time across seeds (rounds).
    pub max_wait: u64,
    /// Mean of per-seed max waits.
    pub mean_wait: f64,
    /// The Theorem 6 scale `maxDisc × n` for comparison.
    pub thm6_scale: u64,
}

/// Sweep seeds for one (topology, maxDisc) cell.
pub fn waiting_row(
    name: &str,
    h: &Arc<Hypergraph>,
    algo: AlgoKind,
    max_disc: u64,
    seeds: u64,
    budget: u64,
) -> WaitingRow {
    let outs = parallel_map(0..seeds, |seed| {
        measure_waiting(h, algo, seed, max_disc, budget)
    });
    let max_wait = outs.iter().map(|o| o.max_wait_rounds).max().unwrap_or(0);
    let mean_wait =
        outs.iter().map(|o| o.max_wait_rounds as f64).sum::<f64>() / outs.len().max(1) as f64;
    WaitingRow {
        name: name.to_string(),
        n: h.n(),
        max_disc,
        max_wait,
        mean_wait,
        thm6_scale: max_disc.max(1) * h.n() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sscc_hypergraph::generators;

    #[test]
    fn cc2_waits_are_finite_on_ring() {
        let h = Arc::new(generators::ring(4, 2));
        let o = measure_waiting(&h, AlgoKind::Cc2, 3, 1, 30_000);
        assert!(o.convened >= 4, "enough meetings to measure: {o:?}");
        assert!(o.max_wait_rounds > 0);
        // Fairness: the largest gap is far below the run length.
        assert!(
            o.max_wait_rounds < o.total_rounds / 2,
            "wait {} vs rounds {}",
            o.max_wait_rounds,
            o.total_rounds
        );
    }

    #[test]
    fn latency_histogram_quantiles_are_nearest_rank() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        for v in [5u64, 1, 9, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.quantile(0.0), Some(1), "q=0 clamps to the minimum");
        assert_eq!(h.quantile(0.5), Some(5), "median of 1,3,5,7,9");
        assert_eq!(h.quantile(0.99), Some(9));
        assert_eq!(h.quantile(1.0), Some(9));
        assert_eq!(h.max(), Some(9));
        assert!((h.mean() - 5.0).abs() < 1e-9);
        // Recording after a query keeps results exact.
        h.record(11);
        assert_eq!(h.quantile(1.0), Some(11));
    }

    #[test]
    fn snapshot_is_a_frozen_view() {
        let mut h = LatencyHistogram::new();
        for v in [4u64, 2, 8, 6] {
            h.record(v);
        }
        let snap = h.snapshot();
        h.record(100); // does not retroactively appear in the snapshot
        assert_eq!(snap.len(), 4);
        assert_eq!(snap.quantile(0.5), Some(4));
        assert_eq!(snap.max(), Some(8));
        assert!((snap.mean() - 5.0).abs() < 1e-9);
        assert_eq!(h.max(), Some(100));
        assert!(LatencySnapshot::default().quantile(0.5).is_none());
    }

    #[test]
    fn waiting_row_aggregates() {
        let h = Arc::new(generators::ring(4, 2));
        let row = waiting_row("ring4", &h, AlgoKind::Cc2, 1, 4, 20_000);
        assert_eq!(row.n, 4);
        assert!(row.max_wait >= row.mean_wait as u64);
        assert_eq!(row.thm6_scale, 4);
    }
}
