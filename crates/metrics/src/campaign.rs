//! Sustained-fault campaigns: the snap-stabilization stress harness.
//!
//! A campaign drives a simulation for a fixed number of steps while a
//! seeded [`FaultCampaign`] schedule injects **transient faults** (a
//! fraction of processes overwritten with arbitrary states, §2.5) and
//! **topology churn** (committee add/remove/join/leave/rewire proposals)
//! into the running system — without ever resetting the observers, so
//! meeting history, participation counters and the violation record span
//! the whole bombardment.
//!
//! Two distributions come out:
//!
//! * **Recovery time** — for each disruption, the number of steps until
//!   the next *post-initial* convene (a meeting started by the algorithm
//!   after the disruption, i.e. covered by the snap-stabilization
//!   guarantee). A new disruption before recovery restarts the clock.
//! * **Safety-violation window** — the number of specification violations
//!   recorded during each such recovery window. Snap-stabilization claims
//!   these are all **zero**: every task started after the faults satisfies
//!   the specification; there is no "stabilization period" during which
//!   the spec may be violated.

use crate::report::Table;
use crate::runner::{build_sim, AlgoKind, AnySim, Boot, PolicyKind};
use rand::{rngs::StdRng, SeedableRng as _};
use sscc_core::LedgerEvent;
use sscc_hypergraph::{random_mutation_with_bias, Hypergraph, MutationBias};
use sscc_runtime::prelude::{CampaignEvent, FaultCampaign};
use sscc_runtime::wire::{self, Reader};
use std::sync::Arc;

/// Campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Campaign length in steps.
    pub steps: u64,
    /// Inject a transient fault every this many steps (0 = never).
    pub fault_every: u64,
    /// Fraction of processes struck per fault.
    pub fault_fraction: f64,
    /// Propose a topology mutation every this many steps (0 = never).
    pub churn_every: u64,
    /// Master seed for the fault/churn schedule.
    pub seed: u64,
    /// Structural regime of the churn proposals (grow-only / shrink-only /
    /// balanced).
    pub bias: MutationBias,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            steps: 4_000,
            fault_every: 200,
            fault_fraction: 0.3,
            churn_every: 0,
            seed: 7,
            bias: MutationBias::Balanced,
        }
    }
}

/// What a campaign measured.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Recovery time of each disruption that recovered (steps from the
    /// *latest* disruption to the next post-initial convene).
    pub recovery: Vec<u64>,
    /// Specification violations recorded inside each recovery window
    /// (aligned with [`CampaignReport::recovery`]; snap-stabilization
    /// predicts all zeros).
    pub safety_windows: Vec<u64>,
    /// Disruptions still unrecovered when the campaign ended.
    pub unrecovered: usize,
    /// Post-initial convenes over the whole campaign.
    pub convened: usize,
    /// Total specification violations over the whole campaign.
    pub violations: usize,
    /// Transient faults injected.
    pub faults_injected: usize,
    /// Topology mutations applied.
    pub mutations_applied: usize,
    /// Mutation proposals rejected by validation (skipped, by design).
    pub mutations_rejected: usize,
}

impl CampaignReport {
    /// Largest recovery time observed (0 if none recovered).
    pub fn max_recovery(&self) -> u64 {
        self.recovery.iter().copied().max().unwrap_or(0)
    }

    /// Mean recovery time (0.0 if none recovered).
    pub fn mean_recovery(&self) -> f64 {
        if self.recovery.is_empty() {
            return 0.0;
        }
        self.recovery.iter().sum::<u64>() as f64 / self.recovery.len() as f64
    }

    /// Largest safety-violation window (snap-stabilization predicts 0).
    pub fn max_safety_window(&self) -> u64 {
        self.safety_windows.iter().copied().max().unwrap_or(0)
    }
}

/// Mid-campaign progress: the schedule's rng position, the step cursor,
/// the open recovery window, and the distributions accumulated so far —
/// everything the step loop owns. Persist it alongside the sim blob
/// (`AnySim::save_state`) and a resumed campaign replays the exact
/// remaining event schedule the uninterrupted one would have.
#[derive(Clone, Debug)]
pub struct CampaignProgress {
    campaign: FaultCampaign,
    /// Steps of the campaign already executed.
    step: u64,
    /// Open disruption window: (step it started, violations then).
    open: Option<(u64, usize)>,
    report: CampaignReport,
}

impl CampaignProgress {
    /// Fresh progress for a campaign at step 0.
    pub fn new(cfg: &CampaignConfig) -> Self {
        CampaignProgress {
            campaign: FaultCampaign::new(cfg.seed, cfg.fault_every, cfg.churn_every)
                .with_bias(cfg.bias),
            step: 0,
            open: None,
            report: CampaignReport::default(),
        }
    }

    /// Campaign steps already executed.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Serialize the progress (schedule position + accumulators).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        self.campaign.save_state(out);
        wire::put_u64(out, self.step);
        match self.open {
            None => wire::put_bool(out, false),
            Some((since, viol)) => {
                wire::put_bool(out, true);
                wire::put_u64(out, since);
                wire::put_usize(out, viol);
            }
        }
        wire::put_u64_slice(out, &self.report.recovery);
        wire::put_u64_slice(out, &self.report.safety_windows);
        wire::put_usize(out, self.report.faults_injected);
        wire::put_usize(out, self.report.mutations_applied);
        wire::put_usize(out, self.report.mutations_rejected);
    }

    /// Rebuild progress serialized by [`CampaignProgress::save_state`];
    /// `None` on truncated or corrupted input.
    pub fn restore_state(r: &mut Reader) -> Option<Self> {
        let campaign = FaultCampaign::restore_state(r)?;
        let step = r.u64()?;
        let open = if r.bool()? {
            Some((r.u64()?, r.usize()?))
        } else {
            None
        };
        let report = CampaignReport {
            recovery: r.u64_vec()?,
            safety_windows: r.u64_vec()?,
            faults_injected: r.usize()?,
            mutations_applied: r.usize()?,
            mutations_rejected: r.usize()?,
            ..CampaignReport::default()
        };
        if report.safety_windows.len() != report.recovery.len() {
            return None;
        }
        Some(CampaignProgress {
            campaign,
            step,
            open,
            report,
        })
    }
}

/// Advance a campaign by up to `budget` steps (capped at `cfg.steps`),
/// updating `progress` in place — the resumable core of
/// [`run_campaign_on`]. Returns how many steps were executed.
pub fn run_campaign_chunk(
    sim: &mut AnySim,
    cfg: &CampaignConfig,
    progress: &mut CampaignProgress,
    budget: u64,
) -> u64 {
    let from = progress.step;
    let to = cfg.steps.min(from.saturating_add(budget));
    for step in from + 1..=to {
        for ev in progress.campaign.poll(step) {
            match ev {
                CampaignEvent::Strike { seed } => {
                    // A distributed sim fails mid-run surgery closed; the
                    // campaign skips the injection rather than aborting.
                    if sim.strike(seed, cfg.fault_fraction).is_ok() {
                        progress.report.faults_injected += 1;
                    }
                }
                CampaignEvent::Churn { seed } => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let proposal = random_mutation_with_bias(sim.h(), &mut rng, cfg.bias);
                    match sim.mutate(&proposal) {
                        Ok(_) => progress.report.mutations_applied += 1,
                        Err(_) => progress.report.mutations_rejected += 1,
                    }
                }
            }
            // Every disruption (re)starts the recovery clock.
            progress.open = Some((step, sim.monitor().violations().len()));
        }
        sim.step();
        let recovered = sim.last_events().iter().any(|ev| {
            matches!(ev, LedgerEvent::Convened(idx)
                if sim.ledger().instances()[*idx].post_initial())
        });
        if recovered {
            if let Some((since, viol_at)) = progress.open.take() {
                progress.report.recovery.push(step - since);
                progress
                    .report
                    .safety_windows
                    .push((sim.monitor().violations().len() - viol_at) as u64);
            }
        }
    }
    progress.step = to;
    to - from
}

/// Close out a finished (or abandoned) campaign: fold the sim's end-state
/// observables into the accumulated distributions.
pub fn finalize_campaign(sim: &AnySim, progress: &CampaignProgress) -> CampaignReport {
    let mut report = progress.report.clone();
    report.unrecovered = usize::from(progress.open.is_some());
    report.convened = sim.ledger().convened_count();
    report.violations = sim.monitor().violations().len();
    report
}

/// Run a sustained-fault campaign against an already-configured simulation.
///
/// The caller owns topology, algorithm, engine mode and boot; the campaign
/// owns the bombardment schedule. Deterministic: the same sim + config
/// replays the same event sequence (mutation proposals are drawn from each
/// event's seed against the *current* graph, so lockstep twins evolving
/// identically see identical proposals). Resumable: see
/// [`CampaignProgress`] / [`run_campaign_chunk`].
pub fn run_campaign_on(sim: &mut AnySim, cfg: &CampaignConfig) -> CampaignReport {
    let mut progress = CampaignProgress::new(cfg);
    run_campaign_chunk(sim, cfg, &mut progress, cfg.steps);
    finalize_campaign(sim, &progress)
}

/// Build a simulation and run a campaign over it: `kind` on `h` under the
/// given registry `mode`, eager environment, clean boot.
///
/// # Panics
/// On an unknown/invalid `mode` label.
pub fn run_campaign(
    kind: AlgoKind,
    h: Arc<Hypergraph>,
    mode: &str,
    cfg: &CampaignConfig,
) -> CampaignReport {
    let mut sim = build_sim(
        kind,
        h,
        cfg.seed ^ 0xdae_5eed,
        PolicyKind::Eager { max_disc: 1 },
        Boot::Clean,
    );
    sim.configure_mode(mode).expect("valid mode label");
    run_campaign_on(&mut sim, cfg)
}

/// One labelled campaign row for the EXPERIMENTS.md table.
#[derive(Clone, Debug)]
pub struct CampaignRow {
    /// Algorithm label.
    pub algo: &'static str,
    /// Topology family label.
    pub topology: String,
    /// The measured report.
    pub report: CampaignReport,
}

/// Render campaign rows as the EXPERIMENTS.md table: recovery-time and
/// safety-window distributions per (algorithm, topology family).
pub fn campaign_table(rows: &[CampaignRow]) -> Table {
    let mut t = Table::new([
        "algo",
        "topology",
        "faults",
        "mutations",
        "recovered",
        "mean rec",
        "max rec",
        "max safety win",
        "convened",
        "violations",
    ]);
    for r in rows {
        t.row([
            r.algo.to_string(),
            r.topology.clone(),
            r.report.faults_injected.to_string(),
            r.report.mutations_applied.to_string(),
            r.report.recovery.len().to_string(),
            format!("{:.1}", r.report.mean_recovery()),
            r.report.max_recovery().to_string(),
            r.report.max_safety_window().to_string(),
            r.report.convened.to_string(),
            r.report.violations.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use sscc_hypergraph::generators;

    #[test]
    fn fault_campaign_recovers_with_zero_safety_windows() {
        let h = Arc::new(generators::ring(12, 3));
        let cfg = CampaignConfig {
            steps: 3_000,
            fault_every: 250,
            fault_fraction: 0.4,
            churn_every: 0,
            seed: 11,
            bias: MutationBias::Balanced,
        };
        let rep = run_campaign(AlgoKind::Cc1, h, "par1", &cfg);
        assert!(rep.faults_injected >= 10, "{rep:?}");
        assert!(!rep.recovery.is_empty(), "meetings resumed: {rep:?}");
        assert_eq!(rep.max_safety_window(), 0, "snap: {rep:?}");
        assert_eq!(rep.violations, 0, "{rep:?}");
    }

    #[test]
    fn churn_campaign_applies_mutations_and_stays_safe() {
        let h = Arc::new(generators::ring(12, 3));
        let cfg = CampaignConfig {
            steps: 3_000,
            fault_every: 300,
            fault_fraction: 0.25,
            churn_every: 170,
            seed: 23,
            bias: MutationBias::Balanced,
        };
        let mut sim = build_sim(
            AlgoKind::Cc2,
            h,
            cfg.seed ^ 0xdae_5eed,
            PolicyKind::Eager { max_disc: 1 },
            Boot::Clean,
        );
        sim.configure_mode("inplace").unwrap();
        let rep = run_campaign_on(&mut sim, &cfg);
        assert!(rep.mutations_applied > 0, "{rep:?}");
        assert_eq!(
            rep.violations,
            0,
            "{:?}\n{rep:?}",
            sim.monitor().violations()
        );
        assert!(rep.convened > 0, "{rep:?}");
    }

    #[test]
    fn campaign_is_deterministic() {
        let h = Arc::new(generators::grid_pairs(4, 4));
        let cfg = CampaignConfig {
            steps: 1_500,
            fault_every: 200,
            fault_fraction: 0.3,
            churn_every: 260,
            seed: 5,
            bias: MutationBias::Balanced,
        };
        let a = run_campaign(AlgoKind::Cc1, Arc::clone(&h), "par1", &cfg);
        let b = run_campaign(AlgoKind::Cc1, h, "par1", &cfg);
        assert_eq!(a.recovery, b.recovery);
        assert_eq!(a.convened, b.convened);
        assert_eq!(a.mutations_applied, b.mutations_applied);
    }

    #[test]
    fn grow_only_campaign_never_shrinks_the_committee_set() {
        let h = Arc::new(generators::ring(10, 3));
        let m0 = h.m();
        let cfg = CampaignConfig {
            steps: 2_000,
            fault_every: 0,
            fault_fraction: 0.0,
            churn_every: 120,
            seed: 31,
            bias: MutationBias::GrowOnly,
        };
        let mut sim = build_sim(
            AlgoKind::Cc1,
            h,
            cfg.seed ^ 0xdae_5eed,
            PolicyKind::Eager { max_disc: 1 },
            Boot::Clean,
        );
        sim.configure_mode("par1").unwrap();
        let mut progress = CampaignProgress::new(&cfg);
        let mut last_m = m0;
        while progress.step() < cfg.steps {
            run_campaign_chunk(&mut sim, &cfg, &mut progress, 120);
            let m = sim.h().m();
            assert!(m >= last_m, "grow-only shrank: {last_m} -> {m}");
            last_m = m;
        }
        let rep = finalize_campaign(&sim, &progress);
        assert!(rep.mutations_applied > 0, "{rep:?}");
        assert!(sim.h().m() > m0, "net growth under GrowOnly: {rep:?}");
        assert_eq!(rep.violations, 0, "{rep:?}");
    }

    #[test]
    fn interrupted_campaign_resumes_bit_identical() {
        let h = Arc::new(generators::ring(12, 3));
        let cfg = CampaignConfig {
            steps: 2_400,
            fault_every: 230,
            fault_fraction: 0.35,
            churn_every: 150,
            seed: 77,
            bias: MutationBias::Balanced,
        };
        let build = || {
            let mut sim = build_sim(
                AlgoKind::Cc2,
                Arc::clone(&h),
                cfg.seed ^ 0xdae_5eed,
                PolicyKind::Eager { max_disc: 1 },
                Boot::Clean,
            );
            sim.configure_mode("daemon").unwrap();
            sim
        };

        // Reference: one uninterrupted run.
        let mut reference = build();
        let want = run_campaign_on(&mut reference, &cfg);

        // Crash drill: run 1,000 steps, freeze sim + progress to bytes,
        // drop everything, rehydrate, finish the campaign.
        let mut sim = build();
        let mut progress = CampaignProgress::new(&cfg);
        run_campaign_chunk(&mut sim, &cfg, &mut progress, 1_000);
        let mut sim_blob = Vec::new();
        assert!(sim.save_state(&mut sim_blob));
        let mut prog_blob = Vec::new();
        progress.save_state(&mut prog_blob);
        let (kind, topo) = (sim.kind(), sim.h_arc());
        drop(sim);
        drop(progress);

        let mut sim = crate::runner::restore_sim(kind, topo, &sim_blob).expect("sim restores");
        let mut r = Reader::new(&prog_blob);
        let mut progress = CampaignProgress::restore_state(&mut r).expect("progress restores");
        assert!(r.is_empty(), "no trailing bytes");
        assert_eq!(progress.step(), 1_000);
        run_campaign_chunk(&mut sim, &cfg, &mut progress, u64::MAX);
        let got = finalize_campaign(&sim, &progress);

        assert_eq!(got.recovery, want.recovery);
        assert_eq!(got.safety_windows, want.safety_windows);
        assert_eq!(got.faults_injected, want.faults_injected);
        assert_eq!(got.mutations_applied, want.mutations_applied);
        assert_eq!(got.mutations_rejected, want.mutations_rejected);
        assert_eq!(got.convened, want.convened);
        assert_eq!(got.violations, want.violations);
        assert_eq!(got.unrecovered, want.unrecovered);
        assert_eq!(sim.steps(), reference.steps());
        assert_eq!(sim.h(), reference.h(), "post-churn topologies agree");

        // Truncated progress blobs fail closed.
        for cut in (0..prog_blob.len()).step_by(17) {
            let mut r = Reader::new(&prog_blob[..cut]);
            assert!(
                CampaignProgress::restore_state(&mut r).is_none(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn table_renders_one_row_per_campaign() {
        let rows = vec![CampaignRow {
            algo: "CC1",
            topology: "ring(12,3)".into(),
            report: CampaignReport::default(),
        }];
        let t = campaign_table(&rows);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("max safety win"));
    }
}
