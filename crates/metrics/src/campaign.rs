//! Sustained-fault campaigns: the snap-stabilization stress harness.
//!
//! A campaign drives a simulation for a fixed number of steps while a
//! seeded [`FaultCampaign`] schedule injects **transient faults** (a
//! fraction of processes overwritten with arbitrary states, §2.5) and
//! **topology churn** (committee add/remove/join/leave/rewire proposals)
//! into the running system — without ever resetting the observers, so
//! meeting history, participation counters and the violation record span
//! the whole bombardment.
//!
//! Two distributions come out:
//!
//! * **Recovery time** — for each disruption, the number of steps until
//!   the next *post-initial* convene (a meeting started by the algorithm
//!   after the disruption, i.e. covered by the snap-stabilization
//!   guarantee). A new disruption before recovery restarts the clock.
//! * **Safety-violation window** — the number of specification violations
//!   recorded during each such recovery window. Snap-stabilization claims
//!   these are all **zero**: every task started after the faults satisfies
//!   the specification; there is no "stabilization period" during which
//!   the spec may be violated.

use crate::report::Table;
use crate::runner::{build_sim, AlgoKind, AnySim, Boot, PolicyKind};
use rand::{rngs::StdRng, SeedableRng as _};
use sscc_core::LedgerEvent;
use sscc_hypergraph::{random_mutation, Hypergraph};
use sscc_runtime::prelude::{CampaignEvent, FaultCampaign};
use std::sync::Arc;

/// Campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Campaign length in steps.
    pub steps: u64,
    /// Inject a transient fault every this many steps (0 = never).
    pub fault_every: u64,
    /// Fraction of processes struck per fault.
    pub fault_fraction: f64,
    /// Propose a topology mutation every this many steps (0 = never).
    pub churn_every: u64,
    /// Master seed for the fault/churn schedule.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            steps: 4_000,
            fault_every: 200,
            fault_fraction: 0.3,
            churn_every: 0,
            seed: 7,
        }
    }
}

/// What a campaign measured.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Recovery time of each disruption that recovered (steps from the
    /// *latest* disruption to the next post-initial convene).
    pub recovery: Vec<u64>,
    /// Specification violations recorded inside each recovery window
    /// (aligned with [`CampaignReport::recovery`]; snap-stabilization
    /// predicts all zeros).
    pub safety_windows: Vec<u64>,
    /// Disruptions still unrecovered when the campaign ended.
    pub unrecovered: usize,
    /// Post-initial convenes over the whole campaign.
    pub convened: usize,
    /// Total specification violations over the whole campaign.
    pub violations: usize,
    /// Transient faults injected.
    pub faults_injected: usize,
    /// Topology mutations applied.
    pub mutations_applied: usize,
    /// Mutation proposals rejected by validation (skipped, by design).
    pub mutations_rejected: usize,
}

impl CampaignReport {
    /// Largest recovery time observed (0 if none recovered).
    pub fn max_recovery(&self) -> u64 {
        self.recovery.iter().copied().max().unwrap_or(0)
    }

    /// Mean recovery time (0.0 if none recovered).
    pub fn mean_recovery(&self) -> f64 {
        if self.recovery.is_empty() {
            return 0.0;
        }
        self.recovery.iter().sum::<u64>() as f64 / self.recovery.len() as f64
    }

    /// Largest safety-violation window (snap-stabilization predicts 0).
    pub fn max_safety_window(&self) -> u64 {
        self.safety_windows.iter().copied().max().unwrap_or(0)
    }
}

/// Run a sustained-fault campaign against an already-configured simulation.
///
/// The caller owns topology, algorithm, engine mode and boot; the campaign
/// owns the bombardment schedule. Deterministic: the same sim + config
/// replays the same event sequence (mutation proposals are drawn from each
/// event's seed against the *current* graph, so lockstep twins evolving
/// identically see identical proposals).
pub fn run_campaign_on(sim: &mut AnySim, cfg: &CampaignConfig) -> CampaignReport {
    let mut campaign = FaultCampaign::new(cfg.seed, cfg.fault_every, cfg.churn_every);
    let mut report = CampaignReport::default();
    // Open disruption window: (campaign step it started, violations then).
    let mut open: Option<(u64, usize)> = None;
    for step in 1..=cfg.steps {
        for ev in campaign.poll(step) {
            match ev {
                CampaignEvent::Strike { seed } => {
                    sim.strike(seed, cfg.fault_fraction);
                    report.faults_injected += 1;
                }
                CampaignEvent::Churn { seed } => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let proposal = random_mutation(sim.h(), &mut rng);
                    match sim.mutate(&proposal) {
                        Ok(_) => report.mutations_applied += 1,
                        Err(_) => report.mutations_rejected += 1,
                    }
                }
            }
            // Every disruption (re)starts the recovery clock.
            open = Some((step, sim.monitor().violations().len()));
        }
        sim.step();
        let recovered = sim.last_events().iter().any(|ev| {
            matches!(ev, LedgerEvent::Convened(idx)
                if sim.ledger().instances()[*idx].post_initial())
        });
        if recovered {
            if let Some((since, viol_at)) = open.take() {
                report.recovery.push(step - since);
                report
                    .safety_windows
                    .push((sim.monitor().violations().len() - viol_at) as u64);
            }
        }
    }
    report.unrecovered = usize::from(open.is_some());
    report.convened = sim.ledger().convened_count();
    report.violations = sim.monitor().violations().len();
    report
}

/// Build a simulation and run a campaign over it: `kind` on `h` under the
/// given registry `mode`, eager environment, clean boot.
///
/// # Panics
/// On an unknown/invalid `mode` label.
pub fn run_campaign(
    kind: AlgoKind,
    h: Arc<Hypergraph>,
    mode: &str,
    cfg: &CampaignConfig,
) -> CampaignReport {
    let mut sim = build_sim(
        kind,
        h,
        cfg.seed ^ 0xdae_5eed,
        PolicyKind::Eager { max_disc: 1 },
        Boot::Clean,
    );
    sim.configure_mode(mode).expect("valid mode label");
    run_campaign_on(&mut sim, cfg)
}

/// One labelled campaign row for the EXPERIMENTS.md table.
#[derive(Clone, Debug)]
pub struct CampaignRow {
    /// Algorithm label.
    pub algo: &'static str,
    /// Topology family label.
    pub topology: String,
    /// The measured report.
    pub report: CampaignReport,
}

/// Render campaign rows as the EXPERIMENTS.md table: recovery-time and
/// safety-window distributions per (algorithm, topology family).
pub fn campaign_table(rows: &[CampaignRow]) -> Table {
    let mut t = Table::new([
        "algo",
        "topology",
        "faults",
        "mutations",
        "recovered",
        "mean rec",
        "max rec",
        "max safety win",
        "convened",
        "violations",
    ]);
    for r in rows {
        t.row([
            r.algo.to_string(),
            r.topology.clone(),
            r.report.faults_injected.to_string(),
            r.report.mutations_applied.to_string(),
            r.report.recovery.len().to_string(),
            format!("{:.1}", r.report.mean_recovery()),
            r.report.max_recovery().to_string(),
            r.report.max_safety_window().to_string(),
            r.report.convened.to_string(),
            r.report.violations.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use sscc_hypergraph::generators;

    #[test]
    fn fault_campaign_recovers_with_zero_safety_windows() {
        let h = Arc::new(generators::ring(12, 3));
        let cfg = CampaignConfig {
            steps: 3_000,
            fault_every: 250,
            fault_fraction: 0.4,
            churn_every: 0,
            seed: 11,
        };
        let rep = run_campaign(AlgoKind::Cc1, h, "par1", &cfg);
        assert!(rep.faults_injected >= 10, "{rep:?}");
        assert!(!rep.recovery.is_empty(), "meetings resumed: {rep:?}");
        assert_eq!(rep.max_safety_window(), 0, "snap: {rep:?}");
        assert_eq!(rep.violations, 0, "{rep:?}");
    }

    #[test]
    fn churn_campaign_applies_mutations_and_stays_safe() {
        let h = Arc::new(generators::ring(12, 3));
        let cfg = CampaignConfig {
            steps: 3_000,
            fault_every: 300,
            fault_fraction: 0.25,
            churn_every: 170,
            seed: 23,
        };
        let mut sim = build_sim(
            AlgoKind::Cc2,
            h,
            cfg.seed ^ 0xdae_5eed,
            PolicyKind::Eager { max_disc: 1 },
            Boot::Clean,
        );
        sim.configure_mode("inplace").unwrap();
        let rep = run_campaign_on(&mut sim, &cfg);
        assert!(rep.mutations_applied > 0, "{rep:?}");
        assert_eq!(
            rep.violations,
            0,
            "{:?}\n{rep:?}",
            sim.monitor().violations()
        );
        assert!(rep.convened > 0, "{rep:?}");
    }

    #[test]
    fn campaign_is_deterministic() {
        let h = Arc::new(generators::grid_pairs(4, 4));
        let cfg = CampaignConfig {
            steps: 1_500,
            fault_every: 200,
            fault_fraction: 0.3,
            churn_every: 260,
            seed: 5,
        };
        let a = run_campaign(AlgoKind::Cc1, Arc::clone(&h), "par1", &cfg);
        let b = run_campaign(AlgoKind::Cc1, h, "par1", &cfg);
        assert_eq!(a.recovery, b.recovery);
        assert_eq!(a.convened, b.convened);
        assert_eq!(a.mutations_applied, b.mutations_applied);
    }

    #[test]
    fn table_renders_one_row_per_campaign() {
        let rows = vec![CampaignRow {
            algo: "CC1",
            topology: "ring(12,3)".into(),
            report: CampaignReport::default(),
        }];
        let t = campaign_table(&rows);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("max safety win"));
    }
}
