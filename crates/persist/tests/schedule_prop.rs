//! Property: freezing a simulation at an arbitrary point of a **random
//! mutation/strike schedule** and rehydrating it from the durable
//! container bytes reproduces the uninterrupted run bit-identically —
//! ledger, participation counters, monitor verdicts, topology, and the
//! recorded step trace (compared at the wire level) all agree, whatever
//! the schedule and wherever the cut lands.
//!
//! This is the whole-schedule generalization of the unit tests: the
//! snapshot must be a *consistent cut* even when the history behind it
//! includes observer-preserving strikes and incremental topology repair.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng as _};
use sscc_core::sim::{default_daemon, Cc2Sim, Sim};
use sscc_core::{Cc2, EagerPolicy};
use sscc_hypergraph::{generators, random_mutation, Hypergraph};
use sscc_persist::{Checkpoint, StepTrace};
use sscc_token::WaveToken;
use std::sync::Arc;

/// One step of a deterministic disruption schedule.
#[derive(Clone, Debug)]
enum Op {
    /// Run this many ordinary steps.
    Steps(u64),
    /// Inject a seeded transient fault into 35% of the processes.
    Strike(u64),
    /// Propose a seeded random topology mutation (rejections are fine —
    /// both runs must reject identically).
    Churn(u64),
}

/// A random schedule, expanded deterministically from one seed (the
/// vendored proptest has no collection strategies — a seeded expansion
/// keeps every case reproducible from its generated inputs alone).
fn schedule(seed: u64, len: usize) -> Vec<Op> {
    use rand::Rng as _;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5c4e_d01e);
    (0..len)
        .map(|_| match rng.random_range(0u8..4) {
            0 | 1 => Op::Steps(rng.random_range(1u64..40)),
            2 => Op::Strike(rng.random()),
            _ => Op::Churn(rng.random()),
        })
        .collect()
}

fn apply(sim: &mut Cc2Sim, op: &Op) {
    match op {
        Op::Steps(k) => {
            sim.run(*k);
        }
        Op::Strike(seed) => {
            sim.strike(*seed, 0.35).unwrap();
        }
        Op::Churn(seed) => {
            let mut rng = StdRng::seed_from_u64(*seed);
            let proposal = random_mutation(sim.h(), &mut rng);
            let _ = sim.mutate(&proposal);
        }
    }
}

fn build(h: &Arc<Hypergraph>) -> Cc2Sim {
    let n = h.n();
    let mut sim = Sim::new(
        Arc::clone(h),
        Cc2::new(),
        WaveToken::new(h),
        default_daemon(9, n),
        Box::new(EagerPolicy::new(n, 1)),
    );
    sim.enable_trace();
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_mid_schedule_reproduces_the_run(
        schedule_seed in 0u64..1_000_000,
        len in 2usize..14,
        cut in 0usize..14,
    ) {
        let ops = schedule(schedule_seed, len);
        let cut = cut.min(ops.len());
        let h = Arc::new(generators::ring(8, 3));

        // Uninterrupted reference.
        let mut reference = build(&h);
        for op in &ops {
            apply(&mut reference, op);
        }

        // Crash drill: prefix, freeze through the wire format, drop,
        // rehydrate, suffix.
        let mut sim = build(&h);
        for op in &ops[..cut] {
            apply(&mut sim, op);
        }
        let bytes = Checkpoint::capture_cc2(&sim)
            .expect("standard stack checkpoints")
            .to_bytes();
        drop(sim);
        let mut sim = Checkpoint::from_bytes(&bytes)
            .expect("container roundtrips")
            .restore_cc2()
            .expect("checkpoint restores");
        for op in &ops[cut..] {
            apply(&mut sim, op);
        }

        prop_assert_eq!(sim.steps(), reference.steps());
        prop_assert_eq!(sim.rounds(), reference.rounds());
        prop_assert_eq!(sim.ledger().instances(), reference.ledger().instances());
        prop_assert_eq!(
            sim.ledger().participations(),
            reference.ledger().participations()
        );
        prop_assert_eq!(
            sim.monitor().violations(),
            reference.monitor().violations()
        );
        prop_assert_eq!(sim.h(), reference.h());
        // The recorded executed-action streams are bit-identical on the
        // wire, prefix included (the snapshot carries the recorder).
        let a = StepTrace::from_trace(reference.trace().expect("traced")).to_bytes();
        let b = StepTrace::from_trace(sim.trace().expect("traced")).to_bytes();
        prop_assert_eq!(a, b);
    }
}
