//! Deterministic replay.
//!
//! The whole stack — daemon, policy, engine scheduling — is deterministic
//! given a seed, so a restored checkpoint re-executes the *exact* run it
//! was cut from. The replay driver makes that checkable: re-run a restored
//! sim and compare every executed action against a [`StepTrace`] recorded
//! by the original process. A divergence pinpoints the first differing
//! event — the debugging workflow for "the service crashed at step N".

use crate::steptrace::StepTrace;
use sscc_core::sim::Sim;
use sscc_core::CommitteeAlgorithm;
use sscc_runtime::prelude::TraceEvent;
use sscc_token::TokenLayer;
use std::fmt;

/// A successful replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayReport {
    /// Steps executed by the driver.
    pub steps_replayed: u64,
    /// Events compared (and matched) against the recording.
    pub events_matched: usize,
}

/// Why a replay failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The recording starts before the sim's current step — restore an
    /// earlier checkpoint (or slice the trace with [`StepTrace::since`]).
    TraceBeginsInThePast {
        /// The sim's step counter at replay start.
        sim_step: u64,
        /// First recorded step.
        first_recorded: u64,
    },
    /// The sim reached a terminal configuration before covering the
    /// recording.
    TerminatedEarly {
        /// Step at which the sim went terminal.
        at_step: u64,
    },
    /// The re-execution produced a different event sequence.
    Diverged {
        /// Index (within the compared window) of the first mismatch.
        index: usize,
        /// What the recording holds, if the replay ran short.
        expected: Option<TraceEvent>,
        /// What the replay produced, if it ran long.
        got: Option<TraceEvent>,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::TraceBeginsInThePast {
                sim_step,
                first_recorded,
            } => write!(
                f,
                "recording starts at step {first_recorded}, sim is already at {sim_step}"
            ),
            ReplayError::TerminatedEarly { at_step } => {
                write!(
                    f,
                    "sim terminated at step {at_step} before covering the recording"
                )
            }
            ReplayError::Diverged {
                index,
                expected,
                got,
            } => write!(
                f,
                "replay diverged at event {index}: expected {expected:?}, got {got:?}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Re-execute `sim` until it covers `recording`, verifying every executed
/// action against it.
///
/// `sim` is typically fresh from [`Checkpoint::restore`](crate::Checkpoint::restore)
/// [`crate::Checkpoint::restore`]; only the part of the recording at or
/// after the sim's current step is compared (events before it are expected
/// to live in the sim's own restored trace already). Tracing is enabled on
/// the sim if it is not.
pub fn replay_trace<C, TL>(
    sim: &mut Sim<C, TL>,
    recording: &StepTrace,
) -> Result<ReplayReport, ReplayError>
where
    C: CommitteeAlgorithm,
    TL: TokenLayer,
{
    let base = sim.steps();
    if let Some(first) = recording.events().first() {
        if first.step < base {
            return Err(ReplayError::TraceBeginsInThePast {
                sim_step: base,
                first_recorded: first.step,
            });
        }
    }
    let Some(target) = recording.last_step() else {
        return Ok(ReplayReport {
            steps_replayed: 0,
            events_matched: 0,
        });
    };
    sim.enable_trace();
    let mut steps_replayed = 0u64;
    while sim.steps() <= target {
        if !sim.step() {
            return Err(ReplayError::TerminatedEarly {
                at_step: sim.steps(),
            });
        }
        steps_replayed += 1;
    }
    let got: Vec<TraceEvent> = sim
        .trace()
        .expect("tracing enabled above")
        .events()
        .iter()
        .filter(|e| e.step >= base && e.step <= target)
        .copied()
        .collect();
    let expected = recording.events();
    for (i, pair) in expected
        .iter()
        .map(Some)
        .chain(std::iter::repeat(None))
        .zip(got.iter().map(Some).chain(std::iter::repeat(None)))
        .take(expected.len().max(got.len()))
        .enumerate()
    {
        match pair {
            (Some(e), Some(g)) if e == g => continue,
            (e, g) => {
                return Err(ReplayError::Diverged {
                    index: i,
                    expected: e.copied(),
                    got: g.copied(),
                })
            }
        }
    }
    Ok(ReplayReport {
        steps_replayed,
        events_matched: expected.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Checkpoint;
    use sscc_core::sim::Cc1Sim;
    use sscc_hypergraph::generators;
    use std::sync::Arc;

    #[test]
    fn restored_sim_replays_the_original_recording() {
        let h = Arc::new(generators::fig2());
        let mut sim = Cc1Sim::standard(Arc::clone(&h), 21, 1);
        sim.enable_trace();
        sim.run(250);
        let ckpt = Checkpoint::capture_cc1(&sim).unwrap();
        let cut = sim.steps();

        // The "original process" runs on and records what it did.
        sim.run(300);
        let recording = StepTrace::from_trace(sim.trace().unwrap()).since(cut);
        assert!(!recording.is_empty());

        // A fresh process restores the checkpoint and replays.
        let mut twin = ckpt.restore_cc1().unwrap();
        let report = replay_trace(&mut twin, &recording).unwrap();
        assert_eq!(report.events_matched, recording.len());
        assert!(report.steps_replayed > 0);
    }

    #[test]
    fn replay_survives_the_wire_format() {
        let h = Arc::new(generators::ring(8, 2));
        let mut sim = Cc1Sim::standard(Arc::clone(&h), 4, 2);
        sim.enable_trace();
        sim.run(150);
        let ckpt_bytes = Checkpoint::capture_cc1(&sim).unwrap().to_bytes();
        let cut = sim.steps();
        sim.run(200);
        let trace_bytes = StepTrace::from_trace(sim.trace().unwrap())
            .since(cut)
            .to_bytes();

        let mut twin = Checkpoint::from_bytes(&ckpt_bytes)
            .unwrap()
            .restore_cc1()
            .unwrap();
        let recording = StepTrace::from_bytes(&trace_bytes).unwrap();
        replay_trace(&mut twin, &recording).unwrap();
    }

    #[test]
    fn a_tampered_recording_is_caught_as_divergence() {
        let h = Arc::new(generators::fig2());
        let mut sim = Cc1Sim::standard(Arc::clone(&h), 9, 1);
        sim.enable_trace();
        sim.run(100);
        let ckpt = Checkpoint::capture_cc1(&sim).unwrap();
        let cut = sim.steps();
        sim.run(150);
        let mut events = StepTrace::from_trace(sim.trace().unwrap())
            .since(cut)
            .events()
            .to_vec();
        assert!(!events.is_empty());
        let mid = events.len() / 2;
        events[mid].process = (events[mid].process + 1) % h.n();
        let tampered = StepTrace::from_events(events);

        let mut twin = ckpt.restore_cc1().unwrap();
        match replay_trace(&mut twin, &tampered) {
            Err(ReplayError::Diverged { index, .. }) => assert_eq!(index, mid),
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn stale_recordings_are_rejected() {
        let h = Arc::new(generators::fig2());
        let mut sim = Cc1Sim::standard(Arc::clone(&h), 9, 1);
        sim.enable_trace();
        sim.run(100);
        let full = StepTrace::from_trace(sim.trace().unwrap());
        assert!(matches!(
            replay_trace(&mut sim, &full),
            Err(ReplayError::TraceBeginsInThePast { .. })
        ));
    }
}
