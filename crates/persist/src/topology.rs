//! Hypergraph codec.
//!
//! A committee hypergraph is fully determined by its member lists in raw
//! identifier space: the vertex set is their union, dense indices are the
//! ascending order of raw ids, and edge ids follow list order. All of that
//! is exactly how [`Hypergraph::try_new`] rebuilds the graph, so the codec
//! is just the member lists — and because the vertex set is *fixed* under
//! [`sscc_hypergraph::WorldMutation`] (mutations reject anything that would
//! isolate a process), a graph serialized after an arbitrary mutation
//! history round-trips with identical dense indices. That is the property
//! the restored per-process state vector depends on.

use sscc_hypergraph::Hypergraph;
use sscc_runtime::wire::{self, Reader};

/// Append the member lists of `h` (raw identifiers, edge order) to `out`.
///
/// Raw ids are varint-encoded: generator families use small dense ranges,
/// so a ring-1536 topology costs ~2 bytes per membership.
pub fn encode_topology(h: &Hypergraph, out: &mut Vec<u8>) {
    wire::put_usize(out, h.m());
    for e in h.edge_ids() {
        let members = h.members_raw(e);
        wire::put_usize(out, members.len());
        for raw in members {
            wire::put_varint(out, raw as u64);
        }
    }
}

/// Rebuild a hypergraph from [`encode_topology`] output.
///
/// `None` on truncation, on malformed varints, or when the member lists do
/// not describe a valid committee hypergraph (the full
/// [`Hypergraph::try_new`] validation applies — sizes, duplicates,
/// isolation, connectivity).
pub fn decode_topology(r: &mut Reader) -> Option<Hypergraph> {
    let m = r.usize()?;
    if m > r.remaining() {
        return None;
    }
    let mut committees: Vec<Vec<u32>> = Vec::with_capacity(m);
    for _ in 0..m {
        let len = r.usize()?;
        if len > r.remaining() {
            return None;
        }
        let mut members = Vec::with_capacity(len);
        for _ in 0..len {
            members.push(u32::try_from(r.varint()?).ok()?);
        }
        committees.push(members);
    }
    let borrowed: Vec<&[u32]> = committees.iter().map(Vec::as_slice).collect();
    Hypergraph::try_new(&borrowed).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng as _;
    use sscc_hypergraph::{generators, random_mutation};

    fn roundtrip(h: &Hypergraph) -> Hypergraph {
        let mut buf = Vec::new();
        encode_topology(h, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode_topology(&mut r).expect("decode");
        assert!(r.is_empty(), "codec consumed exactly its bytes");
        back
    }

    #[test]
    fn fixed_topologies_roundtrip() {
        for h in [
            generators::fig1(),
            generators::fig2(),
            generators::ring(12, 3),
        ] {
            let back = roundtrip(&h);
            assert_eq!(back, h);
            assert_eq!(back.n(), h.n());
            // Dense index mapping is preserved exactly.
            for v in 0..h.n() {
                assert_eq!(back.id(v), h.id(v));
            }
        }
    }

    #[test]
    fn mutated_topology_roundtrips_with_stable_indices() {
        let mut h = generators::ring(10, 3);
        let mut rng = StdRng::seed_from_u64(77);
        let mut applied = 0;
        while applied < 25 {
            let mu = random_mutation(&h, &mut rng);
            if h.apply_mutation(&mu).is_ok() {
                applied += 1;
            }
        }
        let back = roundtrip(&h);
        assert_eq!(back, h);
        for v in 0..h.n() {
            assert_eq!(back.id(v), h.id(v));
        }
        for e in h.edge_ids() {
            assert_eq!(back.members_raw(e), h.members_raw(e));
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let h = generators::fig2();
        let mut buf = Vec::new();
        encode_topology(&h, &mut buf);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(decode_topology(&mut r).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn invalid_member_lists_are_rejected() {
        // A singleton committee violates the ≥2-members invariant.
        let mut buf = Vec::new();
        wire::put_usize(&mut buf, 1);
        wire::put_usize(&mut buf, 1);
        wire::put_varint(&mut buf, 4);
        assert!(decode_topology(&mut Reader::new(&buf)).is_none());
    }
}
