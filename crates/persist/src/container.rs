//! The durable checkpoint container.
//!
//! Layout (all little-endian, lengths LEB128):
//!
//! ```text
//! magic    8 bytes   b"SSCCKPT\0"
//! version  u16       FORMAT_VERSION
//! checksum u64       FNV-1a 64 over the payload bytes
//! payload:
//!   algo      str    algorithm label ("cc1" | "cc2" | "cc3" | custom)
//!   topology  bytes  `topology::encode_topology` blob
//!   sim       bytes  `Sim::save_state` blob (includes the EngineConfig
//!                    label, per-process states, observers, daemon + policy)
//! ```
//!
//! Decoding is strict: bad magic, unknown version, checksum mismatch,
//! truncation and trailing garbage are all distinct, reportable errors —
//! a half-written checkpoint file fails closed instead of restoring a
//! subtly wrong world.

use crate::fnv1a64;
use crate::topology::{decode_topology, encode_topology};
use sscc_core::sim::{Cc1Sim, Cc2Sim, Cc3Sim, Sim};
use sscc_core::CommitteeAlgorithm;
use sscc_hypergraph::Hypergraph;
use sscc_runtime::wire::{self, Reader, StateCodec};
use sscc_token::TokenLayer;
use std::fmt;
use std::sync::Arc;

/// Magic prefix of every checkpoint artifact.
pub const MAGIC: [u8; 8] = *b"SSCCKPT\0";

/// Current container format version. Bump on any layout change; decoders
/// reject versions they do not understand rather than guessing.
pub const FORMAT_VERSION: u16 = 1;

/// Why a checkpoint failed to decode or restore.
#[derive(Debug)]
pub enum CheckpointError {
    /// The artifact does not start with [`MAGIC`] — not a checkpoint.
    BadMagic,
    /// The artifact declares a format version this build cannot read.
    UnsupportedVersion(u16),
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload as read.
        actual: u64,
    },
    /// The artifact ended early or a length field overran the buffer.
    Truncated,
    /// Structurally valid container, but the topology blob does not
    /// describe a valid committee hypergraph.
    BadTopology,
    /// Structurally valid container, but the sim blob is inconsistent
    /// (corrupt, or restored against the wrong algorithm pair).
    BadSimState,
    /// The caller asked for a typed restore (`restore_cc1` & co.) but the
    /// checkpoint was captured from a different algorithm.
    AlgoMismatch {
        /// Label stored in the checkpoint.
        found: String,
        /// Label the typed restore expected.
        expected: &'static str,
    },
    /// Filesystem error while reading or writing the artifact.
    Io(std::io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            CheckpointError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: header {expected:#018x}, payload {actual:#018x}"
            ),
            CheckpointError::Truncated => write!(f, "checkpoint truncated or malformed"),
            CheckpointError::BadTopology => write!(f, "checkpoint topology is invalid"),
            CheckpointError::BadSimState => write!(f, "checkpoint sim state is inconsistent"),
            CheckpointError::AlgoMismatch { found, expected } => {
                write!(f, "checkpoint holds a {found:?} run, expected {expected:?}")
            }
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A decoded (or freshly captured) checkpoint: the paired topology and sim
/// blobs plus the algorithm label, independent of any byte container.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    algo: String,
    topology: Vec<u8>,
    sim: Vec<u8>,
}

impl Checkpoint {
    /// Freeze a running sim. `None` when the sim's daemon or policy is a
    /// custom type without persistence support.
    ///
    /// `algo` is a free-form label stored alongside the blobs; the typed
    /// restore helpers ([`Checkpoint::restore_cc1`] & co.) check it, the
    /// generic [`Checkpoint::restore`] ignores it.
    pub fn capture<C, TL>(algo: &str, sim: &Sim<C, TL>) -> Option<Self>
    where
        C: CommitteeAlgorithm,
        TL: TokenLayer,
        C::State: StateCodec,
        TL::State: StateCodec,
    {
        let mut sim_blob = Vec::new();
        if !sim.save_state(&mut sim_blob) {
            return None;
        }
        let mut topology = Vec::new();
        encode_topology(sim.h(), &mut topology);
        Some(Checkpoint {
            algo: algo.to_string(),
            topology,
            sim: sim_blob,
        })
    }

    /// [`Checkpoint::capture`] with the label the typed helpers expect.
    pub fn capture_cc1(sim: &Cc1Sim) -> Option<Self> {
        Self::capture("cc1", sim)
    }

    /// [`Checkpoint::capture`] with the label the typed helpers expect.
    pub fn capture_cc2(sim: &Cc2Sim) -> Option<Self> {
        Self::capture("cc2", sim)
    }

    /// [`Checkpoint::capture`] with the label the typed helpers expect.
    pub fn capture_cc3(sim: &Cc3Sim) -> Option<Self> {
        Self::capture("cc3", sim)
    }

    /// The algorithm label recorded at capture time.
    pub fn algo(&self) -> &str {
        &self.algo
    }

    /// Decode the topology the checkpoint was taken on.
    pub fn topology(&self) -> Result<Hypergraph, CheckpointError> {
        let mut r = Reader::new(&self.topology);
        let h = decode_topology(&mut r).ok_or(CheckpointError::BadTopology)?;
        if r.is_empty() {
            Ok(h)
        } else {
            Err(CheckpointError::BadTopology)
        }
    }

    /// Thaw into a running sim. The algorithm instances are built by the
    /// callbacks once the stored topology is decoded (token layers need
    /// the graph to dimension themselves).
    pub fn restore<C, TL>(
        &self,
        make_cc: impl FnOnce(&Hypergraph) -> C,
        make_tl: impl FnOnce(&Hypergraph) -> TL,
    ) -> Result<Sim<C, TL>, CheckpointError>
    where
        C: CommitteeAlgorithm + 'static,
        TL: TokenLayer + 'static,
        C::State: Copy + StateCodec,
        TL::State: Copy + StateCodec,
    {
        let h = Arc::new(self.topology()?);
        let cc = make_cc(&h);
        let tl = make_tl(&h);
        Sim::restore(Arc::clone(&h), cc, tl, &self.sim).ok_or(CheckpointError::BadSimState)
    }

    fn check_algo(&self, expected: &'static str) -> Result<(), CheckpointError> {
        if self.algo == expected {
            Ok(())
        } else {
            Err(CheckpointError::AlgoMismatch {
                found: self.algo.clone(),
                expected,
            })
        }
    }

    /// Typed restore for the standard CC1 ∘ TC stack.
    pub fn restore_cc1(&self) -> Result<Cc1Sim, CheckpointError> {
        self.check_algo("cc1")?;
        self.restore(|_| sscc_core::Cc1::new(), sscc_token::WaveToken::new)
    }

    /// Typed restore for the standard CC2 ∘ TC stack.
    pub fn restore_cc2(&self) -> Result<Cc2Sim, CheckpointError> {
        self.check_algo("cc2")?;
        self.restore(|_| sscc_core::Cc2::new(), sscc_token::WaveToken::new)
    }

    /// Typed restore for the standard CC3 ∘ TC stack.
    pub fn restore_cc3(&self) -> Result<Cc3Sim, CheckpointError> {
        self.check_algo("cc3")?;
        self.restore(|_| sscc_core::Cc3::new_cc3(), sscc_token::WaveToken::new)
    }

    /// Serialize to the durable container format (magic, version, FNV-1a 64
    /// checksum, payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.topology.len() + self.sim.len() + 16);
        wire::put_str(&mut payload, &self.algo);
        wire::put_bytes(&mut payload, &self.topology);
        wire::put_bytes(&mut payload, &self.sim);

        let mut out = Vec::with_capacity(payload.len() + 18);
        out.extend_from_slice(&MAGIC);
        wire::put_u16(&mut out, FORMAT_VERSION);
        wire::put_u64(&mut out, fnv1a64(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Parse and verify a container produced by [`Checkpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(MAGIC.len()).ok_or(CheckpointError::Truncated)?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u16().ok_or(CheckpointError::Truncated)?;
        if version != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let expected = r.u64().ok_or(CheckpointError::Truncated)?;
        let payload = r.take(r.remaining()).expect("remaining take");
        let actual = fnv1a64(payload);
        if actual != expected {
            return Err(CheckpointError::ChecksumMismatch { expected, actual });
        }
        let mut p = Reader::new(payload);
        let algo = p.str().ok_or(CheckpointError::Truncated)?.to_string();
        let topology = p.bytes().ok_or(CheckpointError::Truncated)?.to_vec();
        let sim = p.bytes().ok_or(CheckpointError::Truncated)?.to_vec();
        if !p.is_empty() {
            return Err(CheckpointError::Truncated);
        }
        Ok(Checkpoint {
            algo,
            topology,
            sim,
        })
    }

    /// Atomically-ish write the container to `path` (write to a sibling
    /// temp file, then rename): a crash mid-write leaves either the old
    /// checkpoint or none, never a torn one.
    pub fn save_file(&self, path: &std::path::Path) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and verify a container from `path`.
    pub fn load_file(path: &std::path::Path) -> Result<Self, CheckpointError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sscc_hypergraph::generators;

    fn sample() -> (Arc<Hypergraph>, Cc1Sim) {
        let h = Arc::new(generators::fig2());
        let mut sim = Cc1Sim::standard(Arc::clone(&h), 5, 1);
        sim.run(200);
        (h, sim)
    }

    #[test]
    fn container_roundtrips() {
        let (_, sim) = sample();
        let ckpt = Checkpoint::capture_cc1(&sim).unwrap();
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.algo(), "cc1");
        let twin = back.restore_cc1().unwrap();
        assert_eq!(twin.steps(), sim.steps());
    }

    #[test]
    fn every_corruption_fails_closed() {
        let (_, sim) = sample();
        let bytes = Checkpoint::capture_cc1(&sim).unwrap().to_bytes();
        // Bad magic.
        let mut b = bytes.clone();
        b[0] ^= 0xff;
        assert!(matches!(
            Checkpoint::from_bytes(&b),
            Err(CheckpointError::BadMagic)
        ));
        // Unknown version.
        let mut b = bytes.clone();
        b[8] = 0xfe;
        assert!(matches!(
            Checkpoint::from_bytes(&b),
            Err(CheckpointError::UnsupportedVersion(_))
        ));
        // One-bit payload flip → checksum mismatch.
        let mut b = bytes.clone();
        let last = b.len() - 1;
        b[last] ^= 0x01;
        assert!(matches!(
            Checkpoint::from_bytes(&b),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        // Truncations anywhere in the header region.
        for cut in 0..18.min(bytes.len()) {
            assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn typed_restore_checks_the_label() {
        let (_, sim) = sample();
        let ckpt = Checkpoint::capture_cc1(&sim).unwrap();
        assert!(matches!(
            ckpt.restore_cc2(),
            Err(CheckpointError::AlgoMismatch { .. })
        ));
    }

    #[test]
    fn file_roundtrip() {
        let (_, sim) = sample();
        let ckpt = Checkpoint::capture_cc1(&sim).unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sscc-persist-test-{}.ckpt", std::process::id()));
        ckpt.save_file(&path).unwrap();
        let back = Checkpoint::load_file(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, ckpt);
    }
}
