//! Delta-compressed action recordings.
//!
//! A [`StepTrace`] is a [`Trace`] snapshot in
//! a compact durable form. Step and round indices are monotone over the
//! event list, so both are stored as varint *deltas* from the previous
//! event; process and action ids are small varints. A steady-state SSCC
//! event costs 4–6 bytes instead of the 32 of the in-memory struct.
//!
//! Layout:
//!
//! ```text
//! magic    4 bytes  b"STRC"
//! version  u16      1
//! checksum u64      FNV-1a 64 over the encoded event stream
//! count    varint   number of events
//! events   count ×  (Δstep varint, Δround varint, process varint,
//!                    action varint)
//! ```

use crate::fnv1a64;
use sscc_runtime::prelude::{Trace, TraceEvent};
use sscc_runtime::wire::{self, Reader};
use std::fmt;

const MAGIC: [u8; 4] = *b"STRC";
const VERSION: u16 = 1;

/// Why a [`StepTrace`] artifact failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// Not a step-trace artifact.
    BadMagic,
    /// Version this build cannot read.
    UnsupportedVersion(u16),
    /// Checksum mismatch — truncated or corrupted stream.
    ChecksumMismatch,
    /// Malformed or truncated event stream.
    Truncated,
    /// A delta overflowed `u64` step/round arithmetic.
    Overflow,
}

impl fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDecodeError::BadMagic => write!(f, "not a step trace (bad magic)"),
            TraceDecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported step-trace version {v}")
            }
            TraceDecodeError::ChecksumMismatch => write!(f, "step-trace checksum mismatch"),
            TraceDecodeError::Truncated => write!(f, "step trace truncated or malformed"),
            TraceDecodeError::Overflow => write!(f, "step-trace delta overflow"),
        }
    }
}

impl std::error::Error for TraceDecodeError {}

/// An ordered recording of executed actions, cheap to persist and replay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepTrace {
    events: Vec<TraceEvent>,
}

impl StepTrace {
    /// Wrap an event list (must be ordered by step; [`Trace`] records are).
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        StepTrace { events }
    }

    /// Snapshot a live in-memory trace.
    pub fn from_trace(trace: &Trace) -> Self {
        Self::from_events(trace.events().to_vec())
    }

    /// The recorded events, in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The suffix of events at or after `step` — the replay payload for a
    /// checkpoint taken at step boundary `step`.
    pub fn since(&self, step: u64) -> StepTrace {
        let at = self.events.partition_point(|e| e.step < step);
        StepTrace {
            events: self.events[at..].to_vec(),
        }
    }

    /// Step index of the last recorded event, if any.
    pub fn last_step(&self) -> Option<u64> {
        self.events.last().map(|e| e.step)
    }

    /// Serialize to the compressed artifact format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(self.events.len() * 5 + 4);
        wire::put_varint(&mut body, self.events.len() as u64);
        let (mut step, mut round) = (0u64, 0u64);
        for e in &self.events {
            wire::put_varint(&mut body, e.step - step);
            wire::put_varint(&mut body, e.round - round);
            wire::put_varint(&mut body, e.process as u64);
            wire::put_varint(&mut body, e.action as u64);
            step = e.step;
            round = e.round;
        }
        let mut out = Vec::with_capacity(body.len() + 14);
        out.extend_from_slice(&MAGIC);
        wire::put_u16(&mut out, VERSION);
        wire::put_u64(&mut out, fnv1a64(&body));
        out.extend_from_slice(&body);
        out
    }

    /// Parse and verify an artifact produced by [`StepTrace::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceDecodeError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(MAGIC.len()).ok_or(TraceDecodeError::Truncated)?;
        if magic != MAGIC {
            return Err(TraceDecodeError::BadMagic);
        }
        let version = r.u16().ok_or(TraceDecodeError::Truncated)?;
        if version != VERSION {
            return Err(TraceDecodeError::UnsupportedVersion(version));
        }
        let expected = r.u64().ok_or(TraceDecodeError::Truncated)?;
        let body = r.take(r.remaining()).expect("remaining take");
        if fnv1a64(body) != expected {
            return Err(TraceDecodeError::ChecksumMismatch);
        }
        let mut b = Reader::new(body);
        let count = b.varint().ok_or(TraceDecodeError::Truncated)?;
        if count > body.len() as u64 {
            // Each event costs ≥ 4 bytes encoded; a count beyond the body
            // length is corrupt even before we hit the end.
            return Err(TraceDecodeError::Truncated);
        }
        let mut events = Vec::with_capacity(count as usize);
        let (mut step, mut round) = (0u64, 0u64);
        for _ in 0..count {
            let ds = b.varint().ok_or(TraceDecodeError::Truncated)?;
            let dr = b.varint().ok_or(TraceDecodeError::Truncated)?;
            let process = b.varint().ok_or(TraceDecodeError::Truncated)?;
            let action = b.varint().ok_or(TraceDecodeError::Truncated)?;
            step = step.checked_add(ds).ok_or(TraceDecodeError::Overflow)?;
            round = round.checked_add(dr).ok_or(TraceDecodeError::Overflow)?;
            events.push(TraceEvent {
                step,
                round,
                process: usize::try_from(process).map_err(|_| TraceDecodeError::Overflow)?,
                action: usize::try_from(action).map_err(|_| TraceDecodeError::Overflow)?,
            });
        }
        if !b.is_empty() {
            return Err(TraceDecodeError::Truncated);
        }
        Ok(StepTrace { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        let mut v = Vec::new();
        let mut step = 0;
        for i in 0..500u64 {
            step += i % 3; // repeated steps (several actions per step) and gaps
            v.push(TraceEvent {
                step,
                round: step / 7,
                process: (i % 13) as usize,
                action: (i % 5) as usize,
            });
        }
        v
    }

    #[test]
    fn roundtrips_bit_identical() {
        let t = StepTrace::from_events(sample_events());
        let bytes = t.to_bytes();
        assert_eq!(StepTrace::from_bytes(&bytes).unwrap(), t);
        // Compression: well under the 32 B/event in-memory footprint.
        assert!(
            bytes.len() < t.len() * 8,
            "{} bytes for {} events",
            bytes.len(),
            t.len()
        );
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = StepTrace::default();
        assert_eq!(StepTrace::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn since_slices_at_the_step_boundary() {
        let t = StepTrace::from_events(sample_events());
        let cut = 100;
        let suffix = t.since(cut);
        assert!(suffix.events().iter().all(|e| e.step >= cut));
        assert_eq!(
            t.len(),
            suffix.len() + t.events().iter().filter(|e| e.step < cut).count()
        );
    }

    #[test]
    fn corruption_fails_closed() {
        let t = StepTrace::from_events(sample_events());
        let bytes = t.to_bytes();
        for cut in (0..bytes.len()).step_by(7) {
            assert!(StepTrace::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut b = bytes.clone();
        let last = b.len() - 1;
        b[last] ^= 0x10;
        assert_eq!(
            StepTrace::from_bytes(&b),
            Err(TraceDecodeError::ChecksumMismatch)
        );
    }
}
