//! # sscc-persist
//!
//! Crash-recoverable checkpoints and deterministic replay for the SSCC
//! coordination stack.
//!
//! The core crate knows how to freeze a running [`sscc_core::Sim`] into a
//! flat byte blob ([`sscc_core::Sim::save_state`]) and thaw it into a
//! bit-identical continuation ([`sscc_core::Sim::restore`]). This crate
//! supplies everything around that seam:
//!
//! * [`topology`] — a codec for [`sscc_hypergraph::Hypergraph`], so a
//!   checkpoint taken *after* dynamic mutations still carries the exact
//!   world it was taken on;
//! * [`container`] — the versioned, checksummed [`Checkpoint`] file format
//!   pairing the topology blob, the engine configuration and the sim blob;
//! * [`steptrace`] — a delta-compressed recording of executed actions
//!   ([`StepTrace`]) small enough to ship alongside a checkpoint;
//! * [`replay`] — a driver that re-executes a restored sim and verifies it
//!   reproduces a recorded trace event for event, turning "it crashed at
//!   step 48 231" into a debuggable, repeatable run.
//!
//! Everything is hand-rolled little-endian + LEB128 on top of
//! [`sscc_runtime::wire`]; no serialization dependency, no unsafe, and every
//! decoder is total — corrupt input yields an error, never a panic.
//!
//! ```
//! use sscc_core::sim::Cc1Sim;
//! use sscc_hypergraph::generators;
//! use sscc_persist::Checkpoint;
//! use std::sync::Arc;
//!
//! let h = Arc::new(generators::fig2());
//! let mut sim = Cc1Sim::standard(Arc::clone(&h), 7, 1);
//! sim.run(500);
//!
//! let ckpt = Checkpoint::capture_cc1(&sim).unwrap();
//! let bytes = ckpt.to_bytes();                    // durable artifact
//!
//! let back = Checkpoint::from_bytes(&bytes).unwrap();
//! let mut twin = back.restore_cc1().unwrap();     // fresh process, same run
//! assert_eq!(twin.steps(), sim.steps());
//! sim.run(500);
//! twin.run(500);
//! assert_eq!(sim.ledger().instances(), twin.ledger().instances());
//! ```

#![deny(missing_docs)]

pub mod container;
pub mod replay;
pub mod steptrace;
pub mod topology;

pub use container::{Checkpoint, CheckpointError, FORMAT_VERSION};
pub use replay::{replay_trace, ReplayError, ReplayReport};
pub use steptrace::{StepTrace, TraceDecodeError};
pub use topology::{decode_topology, encode_topology};

/// FNV-1a 64-bit checksum — the integrity primitive for every durable
/// artifact in this crate. Not cryptographic; it guards against truncation,
/// bit rot and torn writes, which is what a checkpoint needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::fnv1a64;

    #[test]
    fn fnv_vectors() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv_is_order_sensitive() {
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }
}
