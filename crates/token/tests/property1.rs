//! Property 1 conformance, run generically against every `TokenLayer`
//! implementation — and the documented 1.3 divergence between the two
//! substrates (see DESIGN.md §2 and EXPERIMENTS.md E10).

use sscc_hypergraph::{generators, Hypergraph};
use sscc_runtime::prelude::*;
use sscc_token::{TokenLayer, TokenRing, WaveToken};

/// Processes whose `Token(p)` holds in a raw substrate configuration.
fn holders<TL: TokenLayer>(tl: &TL, h: &Hypergraph, states: &[TL::State]) -> Vec<usize> {
    let acc = SliceAccess(states);
    (0..h.n())
        .filter(|&p| {
            let ctx: Ctx<'_, TL::State, ()> = Ctx::new(h, p, &acc, &());
            tl.token(&ctx)
        })
        .collect()
}

/// Drive a substrate with a *fully cooperative* holder (release as soon as
/// held) plus all internal actions, synchronously. Returns per-process
/// counts of `T` executions.
fn cooperative_run<TL: TokenLayer>(
    tl: &TL,
    h: &Hypergraph,
    states: &mut [TL::State],
    steps: usize,
) -> Vec<usize> {
    let mut t_counts = vec![0usize; h.n()];
    for _ in 0..steps {
        let snapshot = states.to_vec();
        let acc = SliceAccess(&snapshot);
        for (p, slot) in states.iter_mut().enumerate() {
            let ctx: Ctx<'_, TL::State, ()> = Ctx::new(h, p, &acc, &());
            if let Some(a) = tl.internal_priority_action(&ctx) {
                *slot = tl.execute_internal(&ctx, a);
            } else if tl.token(&ctx) {
                *slot = tl.release(&ctx);
                t_counts[p] += 1;
            }
        }
    }
    t_counts
}

/// Property 1.2 (first half): with a cooperative holder, every process
/// executes `T` infinitely often — measured as "at least 3 times within a
/// generous horizon" for both substrates.
#[test]
fn p12_everyone_executes_t_infinitely_often() {
    let h = generators::fig1();
    // WaveToken
    let wave = WaveToken::new(&h);
    let mut st: Vec<_> = (0..h.n())
        .map(|p| TokenLayer::initial_state(&wave, &h, p))
        .collect();
    let counts = cooperative_run(&wave, &h, &mut st, 4000);
    assert!(counts.iter().all(|&c| c >= 3), "wave: {counts:?}");
    // TokenRing
    let ring = TokenRing::new(&h);
    let mut st: Vec<_> = (0..h.n())
        .map(|p| TokenLayer::initial_state(&ring, &h, p))
        .collect();
    let counts = cooperative_run(&ring, &h, &mut st, 4000);
    assert!(counts.iter().all(|&c| c >= 3), "ring: {counts:?}");
}

/// Property 1.2 (second half): once stabilized, `Token` holds at no two
/// processes simultaneously. Both substrates satisfy this from clean boots.
#[test]
fn p12_unique_token_from_clean_boot() {
    let h = generators::ring(5, 3);
    let wave = WaveToken::new(&h);
    let mut st: Vec<_> = (0..h.n())
        .map(|p| TokenLayer::initial_state(&wave, &h, p))
        .collect();
    for _ in 0..2000 {
        assert!(holders(&wave, &h, &st).len() <= 1);
        let counts = cooperative_run(&wave, &h, &mut st, 1);
        let _ = counts;
    }
    let ring = TokenRing::new(&h);
    let mut st: Vec<_> = (0..h.n())
        .map(|p| TokenLayer::initial_state(&ring, &h, p))
        .collect();
    for _ in 0..2000 {
        assert_eq!(
            holders(&ring, &h, &st).len(),
            1,
            "dijkstra keeps exactly one"
        );
        cooperative_run(&ring, &h, &mut st, 1);
    }
}

/// Property 1.3, the discriminator: freeze `T` entirely (holders never
/// release) and run ONLY internal actions from arbitrary states.
/// `WaveToken` must still converge to at most one holder; `TokenRing`
/// (which has no internal actions at all) must *fail* this on some seed —
/// the divergence that motivated the default-substrate choice.
#[test]
fn p13_internal_only_stabilization_discriminates_substrates() {
    use rand::SeedableRng as _;
    let h = generators::fig1();
    let wave = WaveToken::new(&h);
    let ring = TokenRing::new(&h);
    let mut ring_ever_stuck = false;
    for seed in 0..20u64 {
        // WaveToken: internal-only convergence.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut wst: Vec<sscc_token::WaveState> = (0..h.n())
            .map(|p| ArbitraryState::arbitrary(&mut rng, &h, p))
            .collect();
        for _ in 0..5000 {
            let snapshot = wst.clone();
            let acc = SliceAccess(&snapshot);
            let mut moved = false;
            for (p, slot) in wst.iter_mut().enumerate() {
                let ctx: Ctx<'_, sscc_token::WaveState, ()> = Ctx::new(&h, p, &acc, &());
                if let Some(a) = wave.internal_priority_action(&ctx) {
                    *slot = wave.execute_internal(&ctx, a);
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        assert!(
            holders(&wave, &h, &wst).len() <= 1,
            "wave seed {seed}: 1.3 violated"
        );

        // TokenRing: no internal actions exist, so an arbitrary multi-token
        // configuration stays multi-token forever when nobody releases.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rst: Vec<sscc_token::TokenState> = (0..h.n())
            .map(|p| ArbitraryState::arbitrary(&mut rng, &h, p))
            .collect();
        let hs = holders(&ring, &h, &rst);
        // Internal actions: none — state is frozen by definition.
        for p in 0..h.n() {
            let acc = SliceAccess(&rst);
            let ctx: Ctx<'_, sscc_token::TokenState, ()> = Ctx::new(&h, p, &acc, &());
            assert_eq!(ring.internal_priority_action(&ctx), None);
        }
        if hs.len() > 1 {
            ring_ever_stuck = true;
        }
    }
    assert!(
        ring_ever_stuck,
        "expected at least one arbitrary configuration to freeze the \
         Dijkstra ring with multiple tokens (clause 1.3 failure witness)"
    );
}

/// Releasing without holding is the identity for both substrates.
#[test]
fn release_without_token_is_identity() {
    let h = generators::fig2();
    let wave = WaveToken::new(&h);
    let st: Vec<_> = (0..h.n())
        .map(|p| TokenLayer::initial_state(&wave, &h, p))
        .collect();
    let hs = holders(&wave, &h, &st);
    for p in 0..h.n() {
        if !hs.contains(&p) {
            let acc = SliceAccess(&st);
            let ctx: Ctx<'_, sscc_token::WaveState, ()> = Ctx::new(&h, p, &acc, &());
            assert_eq!(wave.release(&ctx), st[p]);
        }
    }
}

/// Designations walk the Euler tour: with a cooperative holder the sequence
/// of holders matches consecutive tour owners.
#[test]
fn wave_designation_follows_tour_order() {
    let h = generators::path(3, 2);
    let wave = WaveToken::new(&h);
    let mut st: Vec<_> = (0..h.n())
        .map(|p| TokenLayer::initial_state(&wave, &h, p))
        .collect();
    let mut sequence = Vec::new();
    for _ in 0..400 {
        if let [p] = holders(&wave, &h, &st)[..] {
            if sequence.last() != Some(&p) {
                sequence.push(p);
            }
        }
        cooperative_run(&wave, &h, &mut st, 1);
        if sequence.len() >= 6 {
            break;
        }
    }
    // Expected owner order: tour positions 0,1,2,...
    let expected: Vec<usize> = (0..sequence.len())
        .map(|i| wave.tour().owner(i % wave.tour().len()))
        .collect();
    assert_eq!(sequence, expected, "holders follow the tour");
}
