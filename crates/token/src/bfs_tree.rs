//! Self-stabilizing BFS spanning tree with a known root — the tree-building
//! substrate underneath rooted token circulations ([24–27] build DFS/BFS
//! structures of this kind).
//!
//! Every non-root process maintains `(dist, parent)`; the root pins
//! `(0, none)`. A process adopts the smallest neighbor distance plus one,
//! parenting on the smallest-index neighbor achieving it. Distances are
//! capped below `n`, so cycles of corrupted parent pointers inflate their
//! distances until they break against the cap, after which correct BFS
//! levels flood from the root. Stabilizes to the BFS tree used by
//! [`crate::TokenRing`]'s static tour (which is *precomputed* from the same
//! topology — this module demonstrates that the tree itself is
//! self-stabilizingly constructible, see DESIGN.md §2).

use sscc_hypergraph::Hypergraph;
use sscc_runtime::prelude::{ActionId, ArbitraryState, Ctx, GuardedAlgorithm, StateAccess};

/// Per-process tree state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeState {
    /// Believed BFS level (root: 0). Capped at `n - 1`.
    pub dist: u32,
    /// Parent's dense index; `None` at the root (and transiently at
    /// processes that lost their parent to the distance cap).
    pub parent: Option<usize>,
}

/// The rooted BFS-tree algorithm (one action: `relink`).
pub struct BfsTree {
    root: usize,
}

impl BfsTree {
    /// BFS tree rooted at dense index `root`.
    pub fn new(root: usize) -> Self {
        BfsTree { root }
    }

    /// The root process.
    pub fn root(&self) -> usize {
        self.root
    }

    fn target<E: ?Sized, A: StateAccess<TreeState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, TreeState, E, A>,
    ) -> TreeState {
        if ctx.me() == self.root {
            return TreeState {
                dist: 0,
                parent: None,
            };
        }
        let n = ctx.h().n() as u32;
        let mut best: Option<TreeState> = None;
        for (q, s) in ctx.neighbor_states() {
            let d = s.dist.saturating_add(1);
            if d >= n {
                continue;
            }
            if best.is_none_or(|b| d < b.dist) {
                best = Some(TreeState {
                    dist: d,
                    parent: Some(q),
                });
            }
        }
        // No admissible neighbor (all capped): park at the cap, orphaned.
        best.unwrap_or(TreeState {
            dist: n - 1,
            parent: None,
        })
    }
}

impl GuardedAlgorithm for BfsTree {
    type State = TreeState;
    type Env = ();

    fn action_count(&self) -> usize {
        1
    }

    fn action_name(&self, a: ActionId) -> String {
        assert_eq!(a, 0);
        "relink".to_string()
    }

    fn initial_state(&self, h: &Hypergraph, me: usize) -> TreeState {
        if me == self.root {
            TreeState {
                dist: 0,
                parent: None,
            }
        } else {
            TreeState {
                dist: h.n() as u32 - 1,
                parent: None,
            }
        }
    }

    fn priority_action<A: StateAccess<TreeState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, TreeState, (), A>,
    ) -> Option<ActionId> {
        (*ctx.my_state() != self.target(ctx)).then_some(0)
    }

    fn execute<A: StateAccess<TreeState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, TreeState, (), A>,
        a: ActionId,
    ) -> TreeState {
        assert_eq!(a, 0);
        self.target(ctx)
    }
}

impl ArbitraryState for TreeState {
    fn arbitrary(rng: &mut rand::rngs::StdRng, h: &Hypergraph, me: usize) -> Self {
        use rand::Rng as _;
        let parent = if rng.random_bool(0.2) {
            None
        } else {
            // Domain constraint of the model: the parent pointer ranges over
            // the process's neighbors.
            let nbrs = h.neighbors(me);
            Some(nbrs[rng.random_range(0..nbrs.len())])
        };
        TreeState {
            dist: rng.random_range(0..h.n() as u32),
            parent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sscc_hypergraph::{generators, network};
    use sscc_runtime::prelude::*;
    use std::sync::Arc;

    fn assert_bfs(h: &Hypergraph, root: usize, states: &[TreeState]) {
        let d = network::bfs_distances(h, root);
        for p in 0..h.n() {
            assert_eq!(states[p].dist as usize, d[p], "level of p{p}");
            if p == root {
                assert_eq!(states[p].parent, None);
            } else {
                let par = states[p].parent.expect("non-root has a parent");
                assert!(h.are_neighbors(p, par));
                assert_eq!(d[par] + 1, d[p], "parent is one level up");
            }
        }
    }

    #[test]
    fn builds_bfs_tree_from_boot() {
        let h = Arc::new(generators::fig1());
        let root = h.dense_of(3);
        let mut w = World::new(Arc::clone(&h), BfsTree::new(root));
        let (_, q) = w.run_to_quiescence(&mut Synchronous, &(), 1000);
        assert!(q);
        assert_bfs(&h, root, w.states());
    }

    #[test]
    fn stabilizes_from_arbitrary_states() {
        let h = Arc::new(generators::grid_pairs(3, 4));
        let root = 5;
        for seed in 0..20 {
            let mut w = World::new(Arc::clone(&h), BfsTree::new(root));
            strike(&mut w, seed);
            let mut d = WeaklyFair::new(Central::new(seed), 6);
            let (_, q) = w.run_to_quiescence(&mut d, &(), 200_000);
            assert!(q, "seed {seed}");
            assert_bfs(&h, root, w.states());
        }
    }

    #[test]
    fn corrupted_parent_cycle_is_broken() {
        // Ring: force a parent cycle with consistent-looking distances.
        let h = Arc::new(generators::ring(6, 2));
        let mut w = World::new(Arc::clone(&h), BfsTree::new(0));
        for p in 0..h.n() {
            w.set_state(
                p,
                TreeState {
                    dist: 1,
                    parent: Some((p + 1) % h.n()),
                },
            );
        }
        let (_, q) = w.run_to_quiescence(&mut Synchronous, &(), 10_000);
        assert!(q);
        assert_bfs(&h, 0, w.states());
    }

    #[test]
    fn matches_static_tour_tree_levels() {
        // The static spanning tree used by TokenRing and the stabilized
        // dynamic tree agree on levels (both are BFS from the same root).
        let h = Arc::new(generators::fig3());
        let root = h.n() - 1; // max id, TokenRing's default root
        let mut w = World::new(Arc::clone(&h), BfsTree::new(root));
        w.run_to_quiescence(&mut Synchronous, &(), 1000);
        let tree = sscc_hypergraph::SpanningTree::bfs(&h, root);
        let d = network::bfs_distances(&h, root);
        for p in 0..h.n() {
            assert_eq!(w.state(p).dist as usize, d[p]);
            if let Some(par) = tree.parent(p) {
                assert_eq!(d[par] + 1, d[p]);
            }
        }
    }
}
