//! Self-stabilizing token circulation: Dijkstra's K-state algorithm over the
//! Euler tour of a spanning tree.
//!
//! The paper's `TC` black box is "a self-stabilizing leader election composed
//! with a self-stabilizing token circulation for arbitrary rooted networks"
//! ([21–27]). We realize the same contract (Property 1) with the classic
//! folklore construction: lay Dijkstra's K-state mutual exclusion ring over
//! the Euler tour of a spanning tree of `G_H`. Every tour hop connects
//! tree-adjacent processes, so reads stay local; the circulating privilege
//! performs a depth-first traversal of the network, visiting every process
//! infinitely often.
//!
//! Each process owns one counter per tour position it occupies. Position 0
//! (the root's first visit) plays Dijkstra's "bottom machine" role:
//!
//! * position 0 is privileged iff its counter equals its cyclic
//!   predecessor's; the move increments the counter mod `K`;
//! * any other position is privileged iff its counter *differs* from its
//!   predecessor's; the move copies the predecessor's counter.
//!
//! With `K >` number of positions, from any counter assignment the system
//! converges to exactly one privilege circulating the tour (Dijkstra 1974),
//! and privileges never increase in number along the way — which is why the
//! committee layer can already rely on token-based tie-breaking during
//! stabilization (the paper handles multiple transient tokens by max-id
//! priority).

use crate::iface::TokenLayer;
use sscc_hypergraph::{EulerTour, Hypergraph};
use sscc_runtime::prelude::{ActionId, ArbitraryState, Ctx, GuardedAlgorithm, StateAccess};

/// Per-process substrate state: one counter per owned tour position
/// (ascending position order, matching `EulerTour::positions`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenState {
    /// Counter values in `0..K`.
    pub counters: Box<[u32]>,
}

/// The K-state-over-Euler-tour token circulation.
///
/// Constructed per topology; owns the (static) tour. The default root is the
/// maximum-identifier process — Property 1 is root-agnostic, see DESIGN.md.
pub struct TokenRing {
    tour: EulerTour,
    k: u32,
}

impl TokenRing {
    /// Token ring over the default tour of `h` (BFS tree rooted at the
    /// max-id process), with `K = 2(n-1) + 1` states.
    pub fn new(h: &Hypergraph) -> Self {
        let tour = EulerTour::default_of(h);
        let k = tour.len() as u32 + 1;
        TokenRing { tour, k }
    }

    /// Token ring over the tour of a BFS tree rooted at `root`.
    pub fn with_root(h: &Hypergraph, root: usize) -> Self {
        let tour = EulerTour::of(&sscc_hypergraph::SpanningTree::bfs(h, root));
        let k = tour.len() as u32 + 1;
        TokenRing { tour, k }
    }

    /// The underlying tour.
    pub fn tour(&self) -> &EulerTour {
        &self.tour
    }

    /// Number of counter states `K`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Counter value at global tour position `g`, read from `states` through
    /// the context (the owner of `g` is `me` or one of its neighbors when
    /// `g` is adjacent to a position of `me`).
    fn counter_at<E: ?Sized, A: StateAccess<TokenState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, TokenState, E, A>,
        g: usize,
    ) -> u32 {
        let owner = self.tour.owner(g);
        let local = self
            .tour
            .positions(owner)
            .binary_search(&g)
            .expect("g is one of its owner's positions");
        let st = if owner == ctx.me() {
            ctx.my_state()
        } else {
            ctx.state_of(owner)
        };
        // Arbitrary faults keep variables inside their domain, but a state
        // sampled for the wrong tour would be shorter; treat missing slots
        // as 0 rather than panic so misuse surfaces in assertions, not UB.
        st.counters.get(local).copied().unwrap_or(0) % self.k
    }

    /// Is global position `g` (owned by the context's process) privileged?
    fn privileged<E: ?Sized, A: StateAccess<TokenState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, TokenState, E, A>,
        g: usize,
    ) -> bool {
        debug_assert_eq!(self.tour.owner(g), ctx.me());
        let mine = self.counter_at(ctx, g);
        let prev = self.counter_at(ctx, self.tour.pred(g));
        if g == 0 {
            mine == prev
        } else {
            mine != prev
        }
    }

    /// First privileged position of the context's process, if any.
    fn first_privileged<E: ?Sized, A: StateAccess<TokenState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, TokenState, E, A>,
    ) -> Option<usize> {
        self.tour
            .positions(ctx.me())
            .iter()
            .copied()
            .find(|&g| self.privileged(ctx, g))
    }

    /// Number of privileged tour positions in a configuration — the true
    /// stabilization measure. (`Token(p)` is process-granular: a process
    /// holding two transient privileges counts once there, so the *process*
    /// count may wobble during stabilization while this count converges.)
    /// Always >= 1; the system is stabilized exactly when it equals 1.
    pub fn privileged_position_count(&self, h: &Hypergraph, states: &[TokenState]) -> usize {
        (0..h.n())
            .map(|p| {
                let ctx = Ctx::new(h, p, states, &());
                self.tour
                    .positions(p)
                    .iter()
                    .filter(|&&g| self.privileged(&ctx, g))
                    .count()
            })
            .sum()
    }
}

impl TokenLayer for TokenRing {
    type State = TokenState;

    fn initial_state(&self, _h: &Hypergraph, me: usize) -> TokenState {
        // All zeros: the unique privilege sits at position 0 (the root).
        TokenState {
            counters: vec![0; self.tour.positions(me).len()].into(),
        }
    }

    fn token<E: ?Sized, A: StateAccess<TokenState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, TokenState, E, A>,
    ) -> bool {
        self.first_privileged(ctx).is_some()
    }

    fn release<E: ?Sized, A: StateAccess<TokenState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, TokenState, E, A>,
    ) -> TokenState {
        let Some(g) = self.first_privileged(ctx) else {
            return ctx.my_state().clone(); // no token: identity
        };
        let local = self
            .tour
            .positions(ctx.me())
            .binary_search(&g)
            .expect("g belongs to me");
        let prev = self.counter_at(ctx, self.tour.pred(g));
        let mut counters = ctx.my_state().counters.clone();
        // Normalize in passing: a (mis-shaped) short state grows to the
        // correct arity so the write below cannot be lost.
        let want = self.tour.positions(ctx.me()).len();
        if counters.len() != want {
            let mut v = counters.into_vec();
            v.resize(want, 0);
            counters = v.into();
        }
        counters[local] = if g == 0 { (prev + 1) % self.k } else { prev };
        TokenState { counters }
    }

    fn rebuild(&mut self, h: &Hypergraph) {
        // Fresh tour over the mutated neighbor relation, same root. States
        // sized for the old tour are tolerated by `counter_at` (missing
        // slots read 0) and re-shaped by `release`; the usual K-state
        // convergence then erases the surplus privileges.
        *self = TokenRing::with_root(h, self.tour.root());
    }

    fn internal_action_count(&self) -> usize {
        0 // Dijkstra's only action is T itself; stabilization is inherent.
    }

    fn internal_action_name(&self, _a: ActionId) -> String {
        unreachable!("TokenRing has no internal actions")
    }

    fn internal_priority_action<E: ?Sized, A: StateAccess<TokenState> + ?Sized>(
        &self,
        _ctx: &Ctx<'_, TokenState, E, A>,
    ) -> Option<ActionId> {
        None
    }

    fn execute_internal<E: ?Sized, A: StateAccess<TokenState> + ?Sized>(
        &self,
        _ctx: &Ctx<'_, TokenState, E, A>,
        _a: ActionId,
    ) -> TokenState {
        unreachable!("TokenRing has no internal actions")
    }
}

/// Standalone view of the ring as a guarded algorithm with the single
/// action `T` — used to validate Property 1 in isolation (experiment E10).
impl GuardedAlgorithm for TokenRing {
    type State = TokenState;
    type Env = ();

    fn action_count(&self) -> usize {
        1
    }

    fn action_name(&self, a: ActionId) -> String {
        assert_eq!(a, 0);
        "T".to_string()
    }

    fn initial_state(&self, h: &Hypergraph, me: usize) -> TokenState {
        TokenLayer::initial_state(self, h, me)
    }

    fn priority_action<A: StateAccess<TokenState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, TokenState, (), A>,
    ) -> Option<ActionId> {
        self.token(ctx).then_some(0)
    }

    fn execute<A: StateAccess<TokenState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, TokenState, (), A>,
        a: ActionId,
    ) -> TokenState {
        assert_eq!(a, 0);
        self.release(ctx)
    }
}

impl ArbitraryState for TokenState {
    /// Arbitrary counters for the **default tour** of `h` (the one
    /// `TokenRing::new` builds). Counter values are sampled from the full
    /// domain `0..K`.
    fn arbitrary(rng: &mut rand::rngs::StdRng, h: &Hypergraph, me: usize) -> Self {
        use rand::Rng as _;
        let tour = EulerTour::default_of(h);
        let k = tour.len() as u32 + 1;
        let counters = (0..tour.positions(me).len())
            .map(|_| rng.random_range(0..k))
            .collect();
        TokenState { counters }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::token_holders;
    use sscc_hypergraph::generators;
    use sscc_runtime::prelude::*;
    use std::sync::Arc;

    fn holders(ring: &TokenRing, w: &World<TokenRing>) -> Vec<usize> {
        token_holders(ring, w.h(), w.states())
    }

    #[test]
    fn boot_state_has_single_token_at_root() {
        let h = Arc::new(generators::fig1());
        let ring = TokenRing::new(&h);
        let root = ring.tour().root();
        let w = World::new(Arc::clone(&h), TokenRing::new(&h));
        assert_eq!(holders(&ring, &w), vec![root]);
    }

    #[test]
    fn token_circulates_and_visits_everyone() {
        let h = Arc::new(generators::fig1());
        let ring = TokenRing::new(&h);
        let mut w = World::new(Arc::clone(&h), TokenRing::new(&h));
        let mut visited = vec![false; h.n()];
        let mut d = Synchronous;
        for _ in 0..4 * ring.tour().len() {
            let hs = holders(&ring, &w);
            assert_eq!(hs.len(), 1, "stabilized: exactly one token");
            visited[hs[0]] = true;
            let out = w.step(&mut d, &());
            assert_eq!(out.executed.len(), 1);
        }
        assert!(visited.iter().all(|&v| v), "every process held the token");
    }

    #[test]
    fn each_process_executes_t_infinitely_often() {
        let h = Arc::new(generators::ring(5, 3));
        let ring = TokenRing::new(&h);
        let mut w = World::new(Arc::clone(&h), TokenRing::new(&h));
        let mut count = vec![0usize; h.n()];
        let mut d = Synchronous;
        // Three full tours: every process must fire T at least three times.
        for _ in 0..3 * ring.tour().len() {
            let out = w.step(&mut d, &());
            for &(p, _) in &out.executed {
                count[p] += 1;
            }
        }
        assert!(count.iter().all(|&c| c >= 3), "counts: {count:?}");
    }

    #[test]
    fn stabilizes_from_arbitrary_counters() {
        let h = Arc::new(generators::fig1());
        for seed in 0..30 {
            let ring = TokenRing::new(&h);
            let mut w = World::new(Arc::clone(&h), TokenRing::new(&h));
            strike(&mut w, seed);
            let mut d = Synchronous;
            assert!(
                ring.privileged_position_count(&h, w.states()) >= 1,
                "at least one privilege always exists"
            );
            let budget = 10 * ring.tour().len() * ring.k() as usize;
            let mut ok = false;
            for _ in 0..budget {
                assert!(
                    !holders(&ring, &w).is_empty(),
                    "seed {seed}: lost the token"
                );
                w.step(&mut d, &());
                if ring.privileged_position_count(&h, w.states()) == 1 {
                    ok = true;
                    break;
                }
            }
            assert!(ok, "seed {seed}: did not stabilize within budget");
            // Stabilization is permanent: one privilege forever after.
            for _ in 0..100 {
                w.step(&mut d, &());
                assert_eq!(ring.privileged_position_count(&h, w.states()), 1);
                assert_eq!(holders(&ring, &w).len(), 1);
            }
        }
    }

    #[test]
    fn central_daemon_never_increases_privileged_positions() {
        // Classic Dijkstra invariant: under a central daemon (one machine
        // per step) the privilege count is non-increasing.
        let h = Arc::new(generators::ring(5, 3));
        for seed in 0..10 {
            let ring = TokenRing::new(&h);
            let mut w = World::new(Arc::clone(&h), TokenRing::new(&h));
            strike(&mut w, seed);
            let mut d = Central::new(seed);
            let mut prev = ring.privileged_position_count(&h, w.states());
            for _ in 0..2000 {
                w.step(&mut d, &());
                let now = ring.privileged_position_count(&h, w.states());
                assert!(
                    now >= 1 && now <= prev,
                    "seed {seed}: positions {prev} -> {now}"
                );
                prev = now;
            }
        }
    }

    #[test]
    fn single_token_is_stable_invariant() {
        // Once one token remains, it stays one forever (checked 200 steps).
        let h = Arc::new(generators::fig2());
        let ring = TokenRing::new(&h);
        let mut w = World::new(Arc::clone(&h), TokenRing::new(&h));
        let mut d = Synchronous;
        for _ in 0..200 {
            assert_eq!(holders(&ring, &w).len(), 1);
            w.step(&mut d, &());
        }
    }

    #[test]
    fn release_without_token_is_identity() {
        let h = Arc::new(generators::fig2());
        let ring = TokenRing::new(&h);
        let w = World::new(Arc::clone(&h), TokenRing::new(&h));
        // Find some process without the token.
        let hs = holders(&ring, &w);
        let p = (0..h.n()).find(|p| !hs.contains(p)).unwrap();
        let ctx = w.ctx(p, &());
        assert_eq!(&ring.release(&ctx), w.state(p));
    }

    #[test]
    fn custom_root_works() {
        let h = Arc::new(generators::fig1());
        let root = h.dense_of(1);
        let ring = TokenRing::with_root(&h, root);
        assert_eq!(ring.tour().root(), root);
        let states: Vec<TokenState> = (0..h.n())
            .map(|p| TokenLayer::initial_state(&ring, &h, p))
            .collect();
        assert_eq!(token_holders(&ring, &h, &states), vec![root]);
    }

    #[test]
    fn holder_is_unique_after_stabilization_under_central_daemon() {
        let h = Arc::new(generators::path(4, 3));
        let ring = TokenRing::new(&h);
        let mut w = World::new(Arc::clone(&h), TokenRing::new(&h));
        strike(&mut w, 7);
        let mut d = WeaklyFair::new(Central::new(3), 4);
        for _ in 0..20_000 {
            w.step(&mut d, &());
            if ring.privileged_position_count(&h, w.states()) == 1 {
                break;
            }
        }
        assert_eq!(ring.privileged_position_count(&h, w.states()), 1);
        // Property 1.2: from now on, exactly one holder forever.
        for _ in 0..500 {
            w.step(&mut d, &());
            assert_eq!(holders(&ring, &w).len(), 1);
        }
    }
}
