//! The default token substrate: a rooted **broadcast/feedback wave token**
//! with stabilization fully independent of `T` activations — i.e. a
//! faithful Property 1 implementation, including clause 1.3.
//!
//! ## Why not plain Dijkstra?
//!
//! [`crate::TokenRing`] (Dijkstra K-state over the Euler tour) satisfies
//! Property 1.1/1.2, but its stabilization *is* the execution of `T`: a
//! transient extra privilege frozen at a process that never releases can
//! survive forever. That is fatal under CC2/CC3, whose holders release only
//! when leaving a meeting — reproducing exactly the multi-token deadlock
//! this crate's integration tests once observed (see DESIGN.md). The
//! paper's clause 1.3 ("TC stabilizes independently of the activations of
//! action T") is load-bearing, and the cited constructions [24–27] honor it
//! by erasing illegitimate tokens with *internal* actions. So does this
//! module.
//!
//! ## Protocol
//!
//! Static BFS spanning tree with root `r`; static Euler tour of length `L`.
//! Per process: a slot counter `k ∈ Z_L`, a certification stamp `fb ∈ Z_L`,
//! and a release flag `done`.
//!
//! * The **designee** of slot `k` is the owner of tour position `k`.
//!   `Token(p) ≡ designee(k_p) = p ∧ ¬done_p`; `ReleaseToken_p` sets
//!   `done_p := true`. This is the emulated action `T`.
//! * `KCopy` (internal, non-root): `k_p := k_parent` when they differ — the
//!   root's slot floods down the tree.
//! * `DoneReset` (internal): clear a `done` flag that no longer matches a
//!   designation.
//! * `Certify` (internal): `fb_p := k_p` once the subtree of `p` agrees on
//!   `k_p`, is certified, and — if the designee lives here — has released.
//! * `Advance` (internal, root): when the whole tree certifies the current
//!   slot (so the designee has released), `k_r := k_r + 1 (mod L)`.
//!
//! Copying `k` automatically *de*-certifies (`fb` goes stale), so a
//! corrupted certification can cause at most one spurious advance before a
//! genuine bottom-up wave is required again: the substrate converges from
//! any state, with every action above internal — no cooperation from token
//! holders needed. Once stabilized, exactly one process at a time satisfies
//! `Token`, and designations walk the Euler tour: neighbor to neighbor,
//! visiting every process infinitely often.

use crate::iface::TokenLayer;
use sscc_hypergraph::{EulerTour, Hypergraph, SpanningTree};
use sscc_runtime::prelude::{ActionId, ArbitraryState, Ctx, GuardedAlgorithm, StateAccess};

/// Per-process wave-token state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaveState {
    /// Current slot (tour position) this process believes in.
    pub k: u32,
    /// Last slot this process certified for its subtree.
    pub fb: u32,
    /// Has the local designation been released?
    pub done: bool,
}

impl sscc_runtime::wire::StateCodec for WaveState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.k.encode(out);
        self.fb.encode(out);
        self.done.encode(out);
    }

    fn decode(r: &mut sscc_runtime::wire::Reader) -> Option<Self> {
        Some(WaveState {
            k: u32::decode(r)?,
            fb: u32::decode(r)?,
            done: bool::decode(r)?,
        })
    }
}

/// The rooted wave-token substrate. Owns the static tree and tour.
pub struct WaveToken {
    tree: SpanningTree,
    tour: EulerTour,
}

/// Internal action identifiers (code order; later = higher priority).
pub mod action {
    use sscc_runtime::prelude::ActionId;
    /// Root advances to the next slot.
    pub const ADVANCE: ActionId = 0;
    /// Certify the subtree for the current slot.
    pub const CERTIFY: ActionId = 1;
    /// Clear a stale release flag.
    pub const DONE_RESET: ActionId = 2;
    /// Copy the parent's slot.
    pub const KCOPY: ActionId = 3;
    /// Number of internal actions.
    pub const COUNT: usize = 4;
}

impl WaveToken {
    /// Wave token rooted at the max-id process (the library default).
    pub fn new(h: &Hypergraph) -> Self {
        Self::with_root(h, h.n() - 1)
    }

    /// Wave token rooted at `root`; the initial designee is `root` itself
    /// (tour position 0).
    pub fn with_root(h: &Hypergraph, root: usize) -> Self {
        let tree = SpanningTree::bfs(h, root);
        let tour = EulerTour::of(&tree);
        WaveToken { tree, tour }
    }

    /// Tour length `L` (number of designation slots).
    pub fn slots(&self) -> u32 {
        self.tour.len() as u32
    }

    /// The underlying tour.
    pub fn tour(&self) -> &EulerTour {
        &self.tour
    }

    /// Owner of slot `k` (defensively reduced mod `L`; the protocol keeps
    /// `k` in range, so the reduction — an integer division on the guard
    /// hot path — only happens on corrupted boots).
    fn designee(&self, k: u32) -> usize {
        let k = if k < self.slots() {
            k
        } else {
            k % self.slots()
        };
        self.tour.owner(k as usize)
    }

    /// Is `p` the designee of its own believed slot, pre-release?
    fn is_token<E: ?Sized, A: StateAccess<WaveState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, WaveState, E, A>,
    ) -> bool {
        let st = ctx.my_state();
        self.designee(st.k) == ctx.me() && !st.done
    }

    /// The certification condition `cond(p)`: subtree agrees on `k_p`, all
    /// children certified it, and a local designation has been released.
    fn cond<E: ?Sized, A: StateAccess<WaveState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, WaveState, E, A>,
    ) -> bool {
        let st = ctx.my_state();
        let me_ok = self.designee(st.k) != ctx.me() || st.done;
        me_ok
            && self.tree.children(ctx.me()).iter().all(|&c| {
                let cs = ctx.state_of(c);
                cs.k == st.k && cs.fb == st.k
            })
    }

    /// Count the `Token`-satisfying processes of a raw configuration
    /// (experiment helper; after stabilization this is always 1).
    pub fn holder_count(&self, h: &Hypergraph, states: &[WaveState]) -> usize {
        (0..h.n())
            .filter(|&p| self.is_token(&Ctx::new(h, p, states, &())))
            .count()
    }
}

impl TokenLayer for WaveToken {
    type State = WaveState;

    fn initial_state(&self, _h: &Hypergraph, _me: usize) -> WaveState {
        // Slot 0 everywhere: the root (owner of position 0) holds the token;
        // nothing is certified yet, which is fine — certification only
        // matters once the holder releases.
        WaveState {
            k: 0,
            fb: self.slots() - 1,
            done: false,
        }
    }

    fn token<E: ?Sized, A: StateAccess<WaveState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, WaveState, E, A>,
    ) -> bool {
        self.is_token(ctx)
    }

    fn release<E: ?Sized, A: StateAccess<WaveState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, WaveState, E, A>,
    ) -> WaveState {
        let mut st = *ctx.my_state();
        if self.is_token(ctx) {
            st.done = true;
        }
        st
    }

    fn internal_action_count(&self) -> usize {
        action::COUNT
    }

    fn internal_action_name(&self, a: ActionId) -> String {
        match a {
            action::ADVANCE => "Advance",
            action::CERTIFY => "Certify",
            action::DONE_RESET => "DoneReset",
            action::KCOPY => "KCopy",
            _ => unreachable!("unknown wave action {a}"),
        }
        .to_string()
    }

    fn rebuild(&mut self, h: &Hypergraph) {
        // Same root (vertices survive every mutation), fresh tree and tour
        // over the mutated neighbor relation. Existing `k`/`fb` values out
        // of the new tour's range are defensively reduced by `designee` and
        // erased by the internal stabilization — churn debris behaves like
        // transient-fault debris.
        *self = WaveToken::with_root(h, self.tree.root());
    }

    fn changed_visible(&self, old: &WaveState, new: &WaveState) -> bool {
        // `done` is read only by its own process (`is_token` and the
        // `me_ok` conjunct of `cond` look at the local flag; children's
        // `done` is never consulted), so a release/DoneReset alone does not
        // perturb any neighbor's guard.
        old.k != new.k || old.fb != new.fb
    }

    fn internal_priority_action<E: ?Sized, A: StateAccess<WaveState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, WaveState, E, A>,
    ) -> Option<ActionId> {
        let st = ctx.my_state();
        let me = ctx.me();
        // Priority: later in code order wins (like the committee layer).
        if me != self.tree.root() {
            let pk = ctx.state_of(self.tree.parent(me).expect("non-root")).k;
            if st.k != pk {
                return Some(action::KCOPY);
            }
        }
        if st.done && self.designee(st.k) != me {
            return Some(action::DONE_RESET);
        }
        if self.cond(ctx) && st.fb != st.k {
            return Some(action::CERTIFY);
        }
        if me == self.tree.root() && self.cond(ctx) {
            return Some(action::ADVANCE);
        }
        None
    }

    fn execute_internal<E: ?Sized, A: StateAccess<WaveState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, WaveState, E, A>,
        a: ActionId,
    ) -> WaveState {
        let mut st = *ctx.my_state();
        match a {
            action::KCOPY => {
                st.k = ctx
                    .state_of(self.tree.parent(ctx.me()).expect("non-root"))
                    .k;
            }
            action::DONE_RESET => {
                st.done = false;
            }
            action::CERTIFY => {
                st.fb = st.k;
            }
            action::ADVANCE => {
                st.k = (st.k + 1) % self.slots();
            }
            _ => unreachable!("unknown wave action {a}"),
        }
        st
    }
}

/// Standalone guarded-algorithm view (action 0 = `T`, the rest internal) —
/// used to validate Property 1 for this substrate in isolation.
impl GuardedAlgorithm for WaveToken {
    type State = WaveState;
    type Env = ();

    fn action_count(&self) -> usize {
        1 + action::COUNT
    }

    fn action_name(&self, a: ActionId) -> String {
        if a == 0 {
            "T".to_string()
        } else {
            self.internal_action_name(a - 1)
        }
    }

    fn initial_state(&self, h: &Hypergraph, me: usize) -> WaveState {
        TokenLayer::initial_state(self, h, me)
    }

    fn priority_action<A: StateAccess<WaveState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, WaveState, (), A>,
    ) -> Option<ActionId> {
        // Internal stabilization first, then T (the standalone view releases
        // the token as soon as it is held — a maximally cooperative holder).
        if let Some(a) = self.internal_priority_action(ctx) {
            return Some(a + 1);
        }
        self.is_token(ctx).then_some(0)
    }

    fn execute<A: StateAccess<WaveState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, WaveState, (), A>,
        a: ActionId,
    ) -> WaveState {
        if a == 0 {
            self.release(ctx)
        } else {
            self.execute_internal(ctx, a - 1)
        }
    }
}

impl ArbitraryState for WaveState {
    fn arbitrary(rng: &mut rand::rngs::StdRng, h: &Hypergraph, _me: usize) -> Self {
        use rand::Rng as _;
        let l = 2 * (h.n() as u32 - 1); // default tour length
        WaveState {
            k: rng.random_range(0..l),
            fb: rng.random_range(0..l),
            done: rng.random_bool(0.5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sscc_hypergraph::generators;
    use sscc_runtime::prelude::*;
    use std::sync::Arc;

    #[test]
    fn boot_has_exactly_one_holder_at_root() {
        let h = Arc::new(generators::fig1());
        let wave = WaveToken::new(&h);
        let states: Vec<WaveState> = (0..h.n())
            .map(|p| TokenLayer::initial_state(&wave, &h, p))
            .collect();
        assert_eq!(wave.holder_count(&h, &states), 1);
        let root = wave.tour().root();
        let ctx: Ctx<'_, WaveState, ()> = Ctx::new(&h, root, &states, &());
        assert!(TokenLayer::token(&wave, &ctx));
    }

    #[test]
    fn cooperative_circulation_visits_everyone() {
        // Standalone view: holders release immediately; the designation
        // walks the tour and reaches every process within L handoffs.
        let h = Arc::new(generators::fig1());
        let wave = WaveToken::new(&h);
        let slots = wave.slots() as usize;
        let mut w = World::new(Arc::clone(&h), WaveToken::new(&h));
        let mut d = Synchronous;
        let mut seen = vec![false; h.n()];
        // Each handoff costs O(height) steps; budget generously.
        for _ in 0..slots * 40 {
            let states = w.states().to_vec();
            for (p, seen_p) in seen.iter_mut().enumerate() {
                let acc = SliceAccess(&states);
                let ctx: Ctx<'_, WaveState, ()> = Ctx::new(&h, p, &acc, &());
                if TokenLayer::token(&wave, &ctx) {
                    *seen_p = true;
                }
            }
            w.step(&mut d, &());
        }
        assert!(seen.iter().all(|&s| s), "token visited: {seen:?}");
    }

    #[test]
    fn at_most_one_holder_forever_from_clean_boot() {
        let h = Arc::new(generators::ring(5, 3));
        let wave = WaveToken::new(&h);
        let mut w = World::new(Arc::clone(&h), WaveToken::new(&h));
        let mut d = WeaklyFair::new(DistributedRandom::new(5, 0.6), 10);
        for _ in 0..3000 {
            assert!(wave.holder_count(&h, w.states()) <= 1);
            w.step(&mut d, &());
        }
    }

    #[test]
    fn stabilizes_from_arbitrary_states_without_t() {
        // Property 1.3: freeze T entirely (never release) and let only the
        // internal actions run: the holder count must still converge to at
        // most one and then stay there — the crux Dijkstra lacks.
        let h = Arc::new(generators::fig1());
        for seed in 0..25u64 {
            let wave = WaveToken::new(&h);
            // Drive internal actions only, via the TokenLayer interface.
            use rand::SeedableRng as _;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut states: Vec<WaveState> = (0..h.n())
                .map(|p| WaveState::arbitrary(&mut rng, &h, p))
                .collect();
            let mut stable = 0;
            for _ in 0..10_000 {
                // Synchronously execute every enabled internal action.
                let snapshot = states.clone();
                let mut moved = false;
                for (p, slot) in states.iter_mut().enumerate() {
                    let acc = SliceAccess(&snapshot);
                    let ctx: Ctx<'_, WaveState, ()> = Ctx::new(&h, p, &acc, &());
                    if let Some(a) = wave.internal_priority_action(&ctx) {
                        // A held token (designee, not done) blocks Advance
                        // at the root only through certification — emulate
                        // "nobody ever releases" by skipping nothing: all
                        // actions here are internal by construction.
                        *slot = wave.execute_internal(&ctx, a);
                        moved = true;
                    }
                }
                if !moved {
                    stable += 1;
                    if stable > 5 {
                        break;
                    }
                } else {
                    stable = 0;
                }
            }
            let holders = wave.holder_count(&h, &states);
            assert!(
                holders <= 1,
                "seed {seed}: {holders} holders after internal-only stabilization"
            );
        }
    }

    #[test]
    fn frozen_holder_keeps_token_and_system_quiesces() {
        // A holder that never releases: internal actions run out (no
        // livelock), the designation stays put, holder keeps Token forever.
        let h = Arc::new(generators::fig2());
        let wave = WaveToken::new(&h);
        let mut states: Vec<WaveState> = (0..h.n())
            .map(|p| TokenLayer::initial_state(&wave, &h, p))
            .collect();
        for _ in 0..1000 {
            let snapshot = states.clone();
            let mut moved = false;
            for (p, slot) in states.iter_mut().enumerate() {
                let acc = SliceAccess(&snapshot);
                let ctx: Ctx<'_, WaveState, ()> = Ctx::new(&h, p, &acc, &());
                if let Some(a) = wave.internal_priority_action(&ctx) {
                    *slot = wave.execute_internal(&ctx, a);
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        assert_eq!(wave.holder_count(&h, &states), 1, "holder retained");
        // And no internal action remains enabled: true quiescence.
        let acc = SliceAccess(&states);
        for p in 0..h.n() {
            let ctx: Ctx<'_, WaveState, ()> = Ctx::new(&h, p, &acc, &());
            assert_eq!(wave.internal_priority_action(&ctx), None);
        }
    }

    #[test]
    fn release_advances_designation_to_tour_successor() {
        let h = Arc::new(generators::fig2());
        let wave = WaveToken::new(&h);
        let mut w = World::new(Arc::clone(&h), WaveToken::new(&h));
        let mut d = Synchronous;
        let first = wave.tour().owner(0);
        let second = wave.tour().owner(1);
        // Run the standalone (auto-release) view until the second tour
        // position's owner holds the token.
        let mut ok = false;
        for _ in 0..200 {
            w.step(&mut d, &());
            let states = w.states().to_vec();
            let acc = SliceAccess(&states);
            let ctx: Ctx<'_, WaveState, ()> = Ctx::new(&h, second, &acc, &());
            if TokenLayer::token(&wave, &ctx) {
                ok = true;
                break;
            }
        }
        assert!(
            ok,
            "designation moved from {first} to tour successor {second}"
        );
    }

    #[test]
    fn custom_root_designates_that_root_first() {
        let h = Arc::new(generators::fig1());
        let root = h.dense_of(2);
        let wave = WaveToken::with_root(&h, root);
        let states: Vec<WaveState> = (0..h.n())
            .map(|p| TokenLayer::initial_state(&wave, &h, p))
            .collect();
        let acc = SliceAccess(&states);
        let ctx: Ctx<'_, WaveState, ()> = Ctx::new(&h, root, &acc, &());
        assert!(TokenLayer::token(&wave, &ctx));
        assert_eq!(wave.holder_count(&h, &states), 1);
    }
}
