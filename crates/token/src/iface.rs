//! The token-circulation interface (paper Property 1).
//!
//! Both committee coordination algorithms treat the token module `TC` as a
//! black box exposing exactly two things to the upper layer: the predicate
//! `Token(p)` and the statement `ReleaseToken_p`. Property 1 is the
//! behavioral contract:
//!
//! 1. `TC` contains one action `T :: Token(p) -> ReleaseToken_p` to pass the
//!    token from neighbor to neighbor;
//! 2. once stabilized, every process executes `T` infinitely often, but when
//!    `T` is enabled at a process it is enabled at no other process;
//! 3. `TC` stabilizes independently of the activations of `T`.
//!
//! In the composition `CC ∘ TC` the action `T` is *emulated* by the
//! committee layer (Remark 1): `CC` decides when to call
//! [`TokenLayer::release`], while any remaining internal stabilization
//! actions of `TC` keep running under fair composition.

use sscc_hypergraph::Hypergraph;
use sscc_runtime::prelude::{ActionId, ArbitraryState, Ctx, ProcessState, StateAccess};

/// A self-stabilizing token-circulation substrate, as consumed by `CC ∘ TC`.
///
/// `Sync` (layer and state): the composed algorithm is evaluated
/// concurrently by the engine's parallel dirty-set drain.
pub trait TokenLayer: Sync {
    /// Per-process token-substrate state.
    type State: ProcessState + ArbitraryState + Sync + Send;

    /// The designated stabilized initial state of process `me` (a unique
    /// token already in place). Fault-free boots start here; stabilization
    /// experiments overwrite it with arbitrary values.
    fn initial_state(&self, h: &Hypergraph, me: usize) -> Self::State;

    /// The `Token(p)` predicate: does the process currently hold a token?
    /// May read the process's own substrate state and its neighbors'.
    ///
    /// Generic over the accessor `A` (like every guard-evaluation entry
    /// point) so the composed hot path stays monomorphic.
    fn token<E: ?Sized, A: StateAccess<Self::State> + ?Sized>(
        &self,
        ctx: &Ctx<'_, Self::State, E, A>,
    ) -> bool;

    /// The `ReleaseToken_p` statement: pass the token along; returns the
    /// process's next substrate state. Callers only invoke it when
    /// [`TokenLayer::token`] holds; implementations may treat a release
    /// without a token as the identity.
    fn release<E: ?Sized, A: StateAccess<Self::State> + ?Sized>(
        &self,
        ctx: &Ctx<'_, Self::State, E, A>,
    ) -> Self::State;

    /// Number of *internal* (non-`T`) stabilization actions.
    fn internal_action_count(&self) -> usize;

    /// Name of internal action `a`.
    fn internal_action_name(&self, a: ActionId) -> String;

    /// Highest-priority enabled internal action, if any (Property 1.3:
    /// these run regardless of `T` activations).
    fn internal_priority_action<E: ?Sized, A: StateAccess<Self::State> + ?Sized>(
        &self,
        ctx: &Ctx<'_, Self::State, E, A>,
    ) -> Option<ActionId>;

    /// Execute internal action `a`.
    fn execute_internal<E: ?Sized, A: StateAccess<Self::State> + ?Sized>(
        &self,
        ctx: &Ctx<'_, Self::State, E, A>,
        a: ActionId,
    ) -> Self::State;

    /// Rebuild topology-derived substrate structure (spanning trees, Euler
    /// tours) after a mutation of `h`. The process set is fixed across
    /// mutations, so per-process substrate *states* keep their shape; any
    /// that no longer fit the new tour (out-of-range slots, mis-sized
    /// counter vectors) are transient-fault debris the substrate's own
    /// stabilization absorbs — exactly the Property 1.3 contract. The
    /// default is a no-op for substrates that hold no topology-derived
    /// structure; [`crate::WaveToken`] and [`crate::TokenRing`] override.
    fn rebuild(&mut self, h: &Hypergraph) {
        let _ = h;
    }

    /// Did the *neighbor-visible* part of a substrate state change between
    /// `old` and `new`? Used by the composition's value-level invalidation:
    /// when this returns `false`, no other process's `Token`/internal guard
    /// can change enabledness, so neighbors are not re-enqueued. The
    /// default treats the whole state as visible (always sound); override
    /// to exclude fields that only the process itself reads.
    fn changed_visible(&self, old: &Self::State, new: &Self::State) -> bool {
        old != new
    }
}

/// Count the token holders in a configuration — the measurement behind all
/// substrate stabilization experiments (Property 1.2 demands this reaches
/// and stays at one).
pub fn token_holders<TL: TokenLayer>(
    layer: &TL,
    h: &Hypergraph,
    states: &[TL::State],
) -> Vec<usize> {
    (0..h.n())
        .filter(|&p| layer.token(&Ctx::new(h, p, states, &())))
        .collect()
}
