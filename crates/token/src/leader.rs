//! Self-stabilizing leader election (min-identifier), the `LE` substrate the
//! paper composes with token circulation ([21, 22, 23]).
//!
//! Bellman-Ford style: every process maintains a candidate leader identifier
//! `lid` and its believed hop distance `dist` to that leader. A process
//! offers itself at distance 0 and otherwise adopts the lexicographically
//! smallest `(lid, dist+1)` among its neighbors, with distances capped below
//! `n` so that *fake* identifiers (corrupted values naming no real process)
//! cannot survive: every propagation step increases a fake id's minimum
//! distance, and the cap eventually starves it. Stabilizes to
//! `lid = min identifier`, `dist =` BFS distance to the min-id process.

use sscc_hypergraph::Hypergraph;
use sscc_runtime::prelude::{ActionId, ArbitraryState, Ctx, GuardedAlgorithm, StateAccess};

/// Per-process leader-election state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaderState {
    /// Candidate leader identifier.
    pub lid: u32,
    /// Believed hop distance to the candidate leader (`< n`).
    pub dist: u32,
}

/// The min-id leader election algorithm (one action: `elect`).
pub struct LeaderElect;

impl LeaderElect {
    /// The value process `me` should hold given its neighborhood: the
    /// lexicographic minimum of its self-candidature `(own_id, 0)` and every
    /// admissible neighbor offer `(lid_q, dist_q + 1)` with `dist_q + 1 < n`.
    fn target<E: ?Sized, A: StateAccess<LeaderState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, LeaderState, E, A>,
    ) -> LeaderState {
        let n = ctx.h().n() as u32;
        let mut best = LeaderState {
            lid: ctx.my_id().value(),
            dist: 0,
        };
        for (_, s) in ctx.neighbor_states() {
            let offer = LeaderState {
                lid: s.lid,
                dist: s.dist.saturating_add(1),
            };
            if offer.dist < n && (offer.lid, offer.dist) < (best.lid, best.dist) {
                best = offer;
            }
        }
        best
    }

    /// Is `p` currently elected? (Its candidate is itself.) After
    /// stabilization this holds exactly at the min-id process.
    pub fn is_leader<E: ?Sized, A: StateAccess<LeaderState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, LeaderState, E, A>,
    ) -> bool {
        let s = ctx.my_state();
        s.lid == ctx.my_id().value() && s.dist == 0
    }
}

impl GuardedAlgorithm for LeaderElect {
    type State = LeaderState;
    type Env = ();

    fn action_count(&self) -> usize {
        1
    }

    fn action_name(&self, a: ActionId) -> String {
        assert_eq!(a, 0);
        "elect".to_string()
    }

    fn initial_state(&self, h: &Hypergraph, me: usize) -> LeaderState {
        // Clean boot: everyone proposes itself; stabilization does the rest.
        LeaderState {
            lid: h.id(me).value(),
            dist: 0,
        }
    }

    fn priority_action<A: StateAccess<LeaderState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, LeaderState, (), A>,
    ) -> Option<ActionId> {
        (*ctx.my_state() != self.target(ctx)).then_some(0)
    }

    fn execute<A: StateAccess<LeaderState> + ?Sized>(
        &self,
        ctx: &Ctx<'_, LeaderState, (), A>,
        a: ActionId,
    ) -> LeaderState {
        assert_eq!(a, 0);
        self.target(ctx)
    }
}

impl ArbitraryState for LeaderState {
    fn arbitrary(rng: &mut rand::rngs::StdRng, h: &Hypergraph, _me: usize) -> Self {
        use rand::Rng as _;
        // Arbitrary lid (including fake ids naming no process) and any
        // in-domain distance.
        LeaderState {
            lid: rng.random_range(0..=u32::from(u16::MAX)),
            dist: rng.random_range(0..h.n() as u32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sscc_hypergraph::{generators, network};
    use sscc_runtime::prelude::*;
    use std::sync::Arc;

    fn assert_elected(h: &Hypergraph, states: &[LeaderState]) {
        let min_id = h.id(0).value(); // ids ascending: dense 0 is the min
        let d = network::bfs_distances(h, 0);
        for p in 0..h.n() {
            assert_eq!(states[p].lid, min_id, "p{p} elects the min id");
            assert_eq!(states[p].dist as usize, d[p], "p{p} has BFS distance");
        }
    }

    #[test]
    fn converges_from_clean_boot() {
        let h = Arc::new(generators::fig1());
        let mut w = World::new(Arc::clone(&h), LeaderElect);
        let (_, q) = w.run_to_quiescence(&mut Synchronous, &(), 1000);
        assert!(q);
        assert_elected(&h, w.states());
    }

    #[test]
    fn converges_from_arbitrary_states_many_seeds() {
        let h = Arc::new(generators::ring(5, 3));
        for seed in 0..25 {
            let mut w = World::new(Arc::clone(&h), LeaderElect);
            strike(&mut w, seed);
            let mut d = WeaklyFair::new(DistributedRandom::new(seed, 0.5), 6);
            let (_, q) = w.run_to_quiescence(&mut d, &(), 100_000);
            assert!(q, "seed {seed} did not quiesce");
            assert_elected(&h, w.states());
        }
    }

    #[test]
    fn fake_smaller_id_is_eliminated() {
        let h = Arc::new(generators::fig2()); // ids 1..5
        let mut w = World::new(Arc::clone(&h), LeaderElect);
        // Everyone believes in a fake leader "0" at various distances.
        for p in 0..h.n() {
            w.set_state(
                p,
                LeaderState {
                    lid: 0,
                    dist: p as u32 % h.n() as u32,
                },
            );
        }
        let (_, q) = w.run_to_quiescence(&mut Synchronous, &(), 10_000);
        assert!(q);
        assert_elected(&h, w.states());
    }

    #[test]
    fn exactly_one_leader_after_stabilization() {
        let h = Arc::new(generators::grid_pairs(3, 3));
        let mut w = World::new(Arc::clone(&h), LeaderElect);
        strike(&mut w, 404);
        let (_, q) = w.run_to_quiescence(&mut Synchronous, &(), 10_000);
        assert!(q);
        let le = LeaderElect;
        let leaders: Vec<usize> = (0..h.n())
            .filter(|&p| le.is_leader(&w.ctx(p, &())))
            .collect();
        assert_eq!(leaders, vec![0], "unique leader = min-id process");
    }

    #[test]
    fn quiescence_means_no_better_offer() {
        let h = Arc::new(generators::path(4, 2));
        let mut w = World::new(Arc::clone(&h), LeaderElect);
        w.run_to_quiescence(&mut Synchronous, &(), 1000);
        // In a terminal configuration every process equals its target.
        assert!(w.enabled(&()).is_empty());
    }
}
