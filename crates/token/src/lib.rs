//! # sscc-token
//!
//! The self-stabilizing token-circulation substrate (`TC`) of
//! *Snap-Stabilizing Committee Coordination*, specified by **Property 1**:
//! one action `T :: Token(p) -> ReleaseToken_p`; once stabilized a unique
//! token exists and visits every process infinitely often; stabilization is
//! independent of `T` activations.
//!
//! * [`WaveToken`] — the **default** substrate: rooted broadcast/feedback
//!   wave, whose stabilization is fully independent of `T` activations
//!   (clause 1.3 — required by CC2/CC3, whose holders release only when
//!   leaving meetings).
//! * [`TokenRing`] — Dijkstra's K-state algorithm over the Euler tour of a
//!   spanning tree: satisfies 1.1/1.2, but *not* 1.3 (kept as the
//!   comparison substrate; see DESIGN.md).
//! * [`LeaderElect`] — self-stabilizing min-id leader election, the `LE`
//!   substrate the paper cites for rooting circulations.
//! * [`BfsTree`] — self-stabilizing rooted BFS spanning tree.
//! * [`TokenLayer`] — the interface the committee layer composes against.
//!
//! ```
//! use sscc_token::{TokenRing, TokenLayer, token_holders};
//! use sscc_hypergraph::generators;
//!
//! let h = generators::fig1();
//! let ring = TokenRing::new(&h);
//! let states: Vec<_> = (0..h.n())
//!     .map(|p| TokenLayer::initial_state(&ring, &h, p))
//!     .collect();
//! assert_eq!(token_holders(&ring, &h, &states).len(), 1);
//! ```

#![warn(missing_docs)]

pub mod bfs_tree;
pub mod dijkstra;
pub mod iface;
pub mod leader;
pub mod wave;

pub use bfs_tree::{BfsTree, TreeState};
pub use dijkstra::{TokenRing, TokenState};
pub use iface::{token_holders, TokenLayer};
pub use leader::{LeaderElect, LeaderState};
pub use wave::{WaveState, WaveToken};
