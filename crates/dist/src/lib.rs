//! # sscc-dist
//!
//! The **message-passing engine tier**: each [`ShardPlan`] shard of the
//! topology runs as an independent actor owning the sub-configuration of
//! its processes, and cross-shard guard reads flow exclusively through
//! serialized **boundary-state frames** exchanged over a channel transport.
//!
//! The locally-shared-memory model (paper §2.2) lets a guard of process
//! `p` read only the closed hyperedge neighborhood `N[p]`, so a shard
//! actor needs exactly two kinds of state: the authoritative states of its
//! own members and *ghost* copies of its frontier (the out-of-shard slice
//! of its members' neighborhoods, [`ShardPlan::frontier_of`]). When a
//! boundary member commits a new state, the owning actor publishes it to
//! every shard whose members read it — and to nobody else. Frames carry
//! per-shard logical-clock metadata (the committed step tag plus a gap-free
//! per-channel sequence number), so ghost reads are **causally consistent
//! at step boundaries**: a step-`t` guard evaluation sees exactly the
//! pre-step configuration of step `t`, which is the composite-atomicity
//! contract the shared-memory engines implement in one address space. The
//! snap-stabilization literature for message-passing systems
//! (Delaët–Devismes–Nesterenko–Tixeuil) is what licenses the tier: the
//! paper's guarantees survive channels, provided reads stay causally
//! aligned — which the coordinator's two-phase step protocol enforces.
//!
//! The shared-memory engines remain the **oracle**: a distributed drain
//! ([`Drain::Distributed`](sscc_runtime::prelude::Drain)) must be
//! bit-identical — traces, ledger, monitor, rounds — to the sequential
//! engine on every topology, which the 21-engine differential suite pins.
//!
//! Layout:
//! * [`frame`] — the checksummed boundary-frame wire format (fail-closed
//!   decode, mirroring the persistence container's corruption posture);
//! * [`transport`] — the [`BoundaryTransport`] seam and its in-process
//!   mpsc implementation (a socket backend slots in behind the same
//!   trait without touching the engine);
//! * [`engine`] — the shard actors, the coordinator, and the
//!   [`DistDrive`] dispatch trait the `Sim` layer drives.
//!
//! [`ShardPlan`]: sscc_hypergraph::ShardPlan
//! [`ShardPlan::frontier_of`]: sscc_hypergraph::ShardPlan::frontier_of

#![deny(missing_docs)]
#![deny(deprecated)]

pub mod engine;
pub mod frame;
pub mod transport;

pub use engine::{DistDrive, DistEngine, MessageStats};
pub use frame::{fnv1a64, BoundaryFrame, FRAME_MAGIC, FRAME_VERSION};
pub use transport::{BoundaryTransport, ChannelTransport};
