//! Shard actors and the coordinating distributed engine.
//!
//! One [`DistEngine`] owns `k` shard actors (one per
//! [`ShardPlan`] shard) and a
//! [`BoundaryTransport`]. Each actor holds the **authoritative** states of
//! its members plus **ghost** copies of its frontier; all cross-shard state
//! flows as serialized [`BoundaryFrame`]s — an actor never reads another
//! actor's memory.
//!
//! A step runs in two phases, cooperatively scheduled by the coordinator
//! (v1 drives actors on the stepping thread; the transport seam is what a
//! multi-process deployment would parallelize over):
//!
//! 1. **Deliver + refresh** — each actor drains its inbox, checks the
//!    frames' causal metadata (step tag = previous committed step,
//!    per-channel sequence gap-free), applies the ghost updates, marks the
//!    member guards whose footprints those ghosts touch, and re-evaluates
//!    its dirty guards against its frozen local view. The coordinator
//!    merges the per-shard enabled sets into the global ascending enabled
//!    set.
//! 2. **Select + commit** — the daemon picks from the merged enabled set
//!    (identical call sequence to the shared-memory engine, so seeded
//!    daemons stay on the same trajectory); each actor executes its
//!    selected members against the *frozen* pre-step local view (composite
//!    atomicity), commits locally, and publishes each changed boundary
//!    state in one frame per reading shard, tagged with the committing
//!    step's logical clock.
//!
//! Frames sent at step `t` are applied in phase 1 of step `t + 1`, so a
//! ghost always holds the pre-step value of its owner — exactly what a
//! shared-memory guard evaluation would read. That alignment (plus pure
//! guards) is the whole bit-identity argument; the differential suite
//! checks it engine-for-engine.

use crate::frame::BoundaryFrame;
use crate::transport::{BoundaryTransport, ChannelTransport};
use sscc_hypergraph::{Hypergraph, ShardPlan};
use sscc_runtime::algorithm::{ActionId, GuardedAlgorithm};
use sscc_runtime::ctx::Ctx;
use sscc_runtime::daemon::{Daemon, Selection};
use sscc_runtime::engine::{StepOutcome, World};
use sscc_runtime::wire::StateCodec;
use std::sync::Arc;

/// Cumulative message-volume counters, for the bench's per-step columns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// Boundary frames sent.
    pub frames: u64,
    /// Serialized frame bytes sent (headers + entries + checksums).
    pub bytes: u64,
    /// Non-terminal steps the engine committed.
    pub steps: u64,
}

/// Object-safe dispatch seam the `Sim` layer drives: one distributed step,
/// environment invalidation, and message-volume observability. Boxed so
/// the facade stores any engine/transport combination behind one field.
pub trait DistDrive<A: GuardedAlgorithm> {
    /// Execute one step: phase 1 (deliver + refresh + merge), daemon
    /// selection, phase 2 (execute + commit + publish). Mirrors
    /// [`World::step_into`] observationally — `out` is filled with the
    /// identical enabled/executed sets, the world's states and step count
    /// are kept in sync, and terminal configurations return without
    /// consulting the daemon.
    fn step_into(
        &mut self,
        world: &mut World<A>,
        daemon: &mut dyn Daemon,
        env: &A::Env,
        out: &mut StepOutcome,
    );

    /// Queue an environment invalidation for process `p` (a request flag
    /// flipped): the owning actors re-evaluate the guards in `p`'s
    /// [`env_footprint`](GuardedAlgorithm::env_footprint) at the start of
    /// the next step.
    fn invalidate_env_of(&mut self, p: usize);

    /// Re-seed every actor from the world's committed configuration —
    /// the hook for state surgery applied *through the world* (restore,
    /// engineered configurations). Local views are recloned, every guard
    /// is marked dirty, in-flight frames are discarded and the sequence
    /// bookkeeping is reset on both ends (self-consistent because the
    /// channels are left empty).
    fn resync(&mut self, world: &World<A>);

    /// Cumulative message-volume counters.
    fn stats(&self) -> MessageStats;

    /// Number of shard actors (the plan may clamp below the requested
    /// count on tiny topologies).
    fn shards(&self) -> usize;
}

/// One shard's actor: authoritative member states, frontier ghosts, a
/// per-member guard cache, and the routing table for its boundary.
struct ShardActor<S> {
    /// Members, ascending by dense index.
    members: Vec<usize>,
    /// Full-length membership mask (`true` = this shard owns the vertex).
    in_shard: Vec<bool>,
    /// Full-length local view: authoritative for members, ghosts for the
    /// frontier; every other slot is never read.
    local: Vec<S>,
    /// Cached priority action per member (the actor-local twin of the
    /// scheduler's cache).
    cache: Vec<Option<ActionId>>,
    /// Members whose guard must be re-evaluated next refresh.
    dirty: Vec<bool>,
    /// Re-evaluate every member next refresh (boot / restore).
    all_dirty: bool,
    /// Ascending enabled members, rebuilt each refresh.
    enabled: Vec<usize>,
    /// Routing: `subs[t]` = this shard's boundary members whose state
    /// shard `t` reads (ascending). Precomputed from
    /// [`ShardPlan::boundary_of`].
    subs: Vec<Vec<usize>>,
    /// Per-destination outgoing sequence numbers (gap-free from 1).
    seq_out: Vec<u64>,
    /// Per-sender last accepted sequence number.
    seq_in: Vec<u64>,
    /// This step's selected members (ascending), coordinator-assigned.
    selected: Vec<usize>,
    /// Phase-2 staging: next states computed against the frozen view.
    staged: Vec<(usize, S)>,
    /// Per-destination outgoing entry batches (reused).
    outbox: Vec<Vec<(usize, S)>>,
    /// Reused inbox drain buffer.
    inbox: Vec<Vec<u8>>,
}

/// The coordinating distributed engine: `k` shard actors over a
/// [`BoundaryTransport`], driven through the [`DistDrive`] seam.
pub struct DistEngine<A: GuardedAlgorithm> {
    h: Arc<Hypergraph>,
    plan: Arc<ShardPlan>,
    actors: Vec<ShardActor<A::State>>,
    transport: Box<dyn BoundaryTransport>,
    /// Trust daemon `Selection` promises (skip subset validation), same
    /// semantics as the shared-memory engine's flag.
    trusted: bool,
    /// Logical clock: number of committed (non-terminal) steps. Frames are
    /// tagged with the clock of their committing step; receivers assert
    /// they apply step-`t` frames while preparing step `t + 1`.
    step_tag: u64,
    /// Queued env invalidations, resolved through
    /// [`GuardedAlgorithm::env_footprint`] at the next refresh.
    pending_env: Vec<usize>,
    /// Enabled-set observation mirror for daemons that want view deltas.
    obs: Vec<bool>,
    now: Vec<bool>,
    added: Vec<usize>,
    removed: Vec<usize>,
    selected: Vec<usize>,
    stats: MessageStats,
}

impl<A> DistEngine<A>
where
    A: GuardedAlgorithm,
    A::State: StateCodec,
{
    /// Build the tier over `world`'s topology and current configuration,
    /// with an in-process [`ChannelTransport`]. The shard count is clamped
    /// by the plan (no empty shards); `trusted` mirrors the engine's
    /// trusted-daemon flag.
    pub fn new(world: &World<A>, shards: usize, trusted: bool) -> Self {
        Self::with_transport(world, shards, trusted, |k| {
            Box::new(ChannelTransport::new(k))
        })
    }

    /// Build with a caller-supplied transport (the seam a socket backend
    /// plugs into). `make` receives the clamped shard count.
    pub fn with_transport(
        world: &World<A>,
        shards: usize,
        trusted: bool,
        make: impl FnOnce(usize) -> Box<dyn BoundaryTransport>,
    ) -> Self {
        let h = world.h_arc();
        let plan = h.shard_plan(shards);
        let k = plan.shards();
        let n = h.n();
        let states = world.states();
        let mut actors = Vec::with_capacity(k);
        for s in 0..k {
            let mut members = plan.members(s).to_vec();
            members.sort_unstable();
            let mut in_shard = vec![false; n];
            for &p in &members {
                in_shard[p] = true;
            }
            // Routing: a boundary member's state goes to every shard owning
            // part of its closed neighborhood.
            let mut subs = vec![Vec::new(); k];
            for p in plan.boundary_of(&h, s) {
                let mut dests = vec![false; k];
                for &q in h.closed_neighborhood(p) {
                    let t = plan.shard_of(q);
                    if t != s {
                        dests[t] = true;
                    }
                }
                for (t, sub) in subs.iter_mut().enumerate() {
                    if dests[t] {
                        sub.push(p);
                    }
                }
            }
            actors.push(ShardActor {
                members,
                in_shard,
                // Ghost slots start from the same committed configuration
                // the members do; unused slots are never read.
                local: states.to_vec(),
                cache: vec![None; n],
                dirty: vec![false; n],
                all_dirty: true,
                enabled: Vec::new(),
                subs,
                seq_out: vec![0; k],
                seq_in: vec![0; k],
                selected: Vec::new(),
                staged: Vec::new(),
                outbox: vec![Vec::new(); k],
                inbox: Vec::new(),
            });
        }
        let transport = make(k);
        assert_eq!(transport.shards(), k, "transport endpoint count");
        DistEngine {
            h,
            plan,
            actors,
            transport,
            trusted,
            step_tag: 0,
            pending_env: Vec::new(),
            obs: world.observation_snapshot(),
            now: vec![false; n],
            added: Vec::new(),
            removed: Vec::new(),
            selected: Vec::new(),
            stats: MessageStats::default(),
        }
    }
}

impl<A> DistDrive<A> for DistEngine<A>
where
    A: GuardedAlgorithm,
    A::State: StateCodec,
{
    fn step_into(
        &mut self,
        world: &mut World<A>,
        daemon: &mut dyn Daemon,
        env: &A::Env,
        out: &mut StepOutcome,
    ) {
        let DistEngine {
            h,
            plan,
            actors,
            transport,
            trusted,
            step_tag,
            pending_env,
            obs,
            now,
            added,
            removed,
            selected,
            stats,
        } = self;
        let h = &**h;
        {
            let algo = world.algo();
            // Queued env invalidations: mark the env footprints' owners.
            for &p in pending_env.iter() {
                for &q in algo.env_footprint(h, p) {
                    let actor = &mut actors[plan.shard_of(q)];
                    if !actor.all_dirty {
                        actor.dirty[q] = true;
                    }
                }
            }
            pending_env.clear();
            // Phase 1: deliver boundary frames, refresh dirty guards.
            for (s, actor) in actors.iter_mut().enumerate() {
                transport.drain_into(s, &mut actor.inbox);
                let inbox = std::mem::take(&mut actor.inbox);
                for bytes in &inbox {
                    let f = BoundaryFrame::<A::State>::decode(bytes)
                        .expect("boundary frame from an in-process peer decodes");
                    assert_eq!(f.to, s, "frame routed to the wrong shard");
                    // Causal metadata: the frame carries its committing
                    // step's clock — it must be the step immediately before
                    // the one being prepared — and the per-channel sequence
                    // must advance gap-free.
                    debug_assert_eq!(
                        f.step + 1,
                        *step_tag,
                        "ghost update from step {} applied while preparing step {}",
                        f.step,
                        *step_tag
                    );
                    debug_assert_eq!(
                        f.seq,
                        actor.seq_in[f.from] + 1,
                        "boundary channel {} -> {s} lost or reordered a frame",
                        f.from
                    );
                    actor.seq_in[f.from] = f.seq;
                    for (v, sv) in f.entries {
                        debug_assert!(!actor.in_shard[v], "peer published a state this shard owns");
                        actor.local[v] = sv;
                        if !actor.all_dirty {
                            for &q in algo.state_footprint(h, v) {
                                if actor.in_shard[q] {
                                    actor.dirty[q] = true;
                                }
                            }
                        }
                    }
                }
                actor.inbox = inbox;
                actor.inbox.clear();
                for i in 0..actor.members.len() {
                    let p = actor.members[i];
                    if actor.all_dirty || actor.dirty[p] {
                        actor.cache[p] =
                            algo.priority_action(&Ctx::new(h, p, actor.local.as_slice(), env));
                        actor.dirty[p] = false;
                    }
                }
                actor.all_dirty = false;
                actor.enabled.clear();
                for &p in &actor.members {
                    if actor.cache[p].is_some() {
                        actor.enabled.push(p);
                    }
                }
            }
            // Merge the per-shard enabled sets (a partition of the global
            // one) into the ascending set the daemon contract expects.
            out.enabled.clear();
            for actor in actors.iter() {
                out.enabled.extend_from_slice(&actor.enabled);
            }
            out.enabled.sort_unstable();
            out.executed.clear();
            if out.enabled.is_empty() {
                return;
            }
            // Daemons maintaining an incremental view get net enabled-set
            // deltas, like the shared-memory engine's observation mirror.
            if daemon.wants_view() {
                added.clear();
                removed.clear();
                for &p in out.enabled.iter() {
                    now[p] = true;
                }
                for (p, o) in obs.iter_mut().enumerate() {
                    if now[p] && !*o {
                        added.push(p);
                    } else if !now[p] && *o {
                        removed.push(p);
                    }
                    *o = now[p];
                }
                for &p in out.enabled.iter() {
                    now[p] = false;
                }
                daemon.observe_delta(added, removed);
            }
            // Identical selection handling to World::step_into, so a
            // misbehaving daemon fails the same asserts in both tiers.
            selected.clear();
            match daemon.select_step(&out.enabled) {
                Selection::All => selected.extend_from_slice(&out.enabled),
                Selection::Sorted(v) => {
                    debug_assert!(
                        v.windows(2).all(|w| w[0] < w[1]),
                        "daemon contract: Sorted selections are ascending and deduplicated"
                    );
                    if !*trusted {
                        assert!(
                            v.iter().all(|p| out.enabled.binary_search(p).is_ok()),
                            "daemon contract: selection must be a subset of the enabled set"
                        );
                    }
                    selected.extend_from_slice(&v);
                }
                Selection::Subset(mut v) => {
                    v.sort_unstable();
                    v.dedup();
                    if !*trusted {
                        assert!(
                            v.iter().all(|p| out.enabled.binary_search(p).is_ok()),
                            "daemon contract: selection must be a subset of the enabled set"
                        );
                    }
                    selected.extend_from_slice(&v);
                }
            }
            assert!(
                !selected.is_empty(),
                "daemon contract: non-empty selection from a non-empty enabled set"
            );
            // Phase 2: execute against the frozen pre-step views, commit
            // locally, publish changed boundary states. The global executed
            // list is emitted in ascending order (the selection is
            // ascending and ownership partitions it).
            for actor in actors.iter_mut() {
                actor.selected.clear();
            }
            for &p in selected.iter() {
                let actor = &actors[plan.shard_of(p)];
                let a = actor.cache[p].expect("selected ⊆ enabled");
                out.executed.push((p, a));
                actors[plan.shard_of(p)].selected.push(p);
            }
            for (s, actor) in actors.iter_mut().enumerate() {
                if actor.selected.is_empty() {
                    continue;
                }
                // Composite atomicity: every execute reads the frozen local
                // view; writes land only after the whole shard computed.
                actor.staged.clear();
                for i in 0..actor.selected.len() {
                    let p = actor.selected[i];
                    let a = actor.cache[p].expect("selected ⊆ enabled");
                    let st = algo.execute(&Ctx::new(h, p, actor.local.as_slice(), env), a);
                    actor.staged.push((p, st));
                }
                for (p, st) in actor.staged.drain(..) {
                    let changed = actor.local[p] != st;
                    // Only the executed footprints can change enabledness.
                    for &q in algo.state_footprint(h, p) {
                        if actor.in_shard[q] {
                            actor.dirty[q] = true;
                        }
                    }
                    if changed {
                        for (t, sub) in actor.subs.iter().enumerate() {
                            if sub.binary_search(&p).is_ok() {
                                actor.outbox[t].push((p, st.clone()));
                            }
                        }
                    }
                    actor.local[p] = st;
                }
                for t in 0..actor.outbox.len() {
                    if actor.outbox[t].is_empty() {
                        continue;
                    }
                    actor.seq_out[t] += 1;
                    let frame = BoundaryFrame {
                        from: s,
                        to: t,
                        step: *step_tag,
                        seq: actor.seq_out[t],
                        entries: std::mem::take(&mut actor.outbox[t]),
                    };
                    let bytes = frame.encode();
                    stats.frames += 1;
                    stats.bytes += bytes.len() as u64;
                    transport.send(t, bytes);
                }
            }
        }
        // Mirror the committed states into the world, which stays the
        // single source of truth for snapshots, fault surgery pre-checks
        // and the facade's terminal-path `enabled_now` probes.
        for &(p, _) in out.executed.iter() {
            let st = self.actors[self.plan.shard_of(p)].local[p].clone();
            if *world.state(p) != st {
                world.set_state(p, st);
            }
        }
        world.set_step_count(world.steps() + 1);
        self.step_tag += 1;
        self.stats.steps += 1;
    }

    fn invalidate_env_of(&mut self, p: usize) {
        self.pending_env.push(p);
    }

    fn resync(&mut self, world: &World<A>) {
        let states = world.states();
        let mut scratch = Vec::new();
        for s in 0..self.actors.len() {
            self.transport.drain_into(s, &mut scratch);
        }
        for actor in &mut self.actors {
            actor.local = states.to_vec();
            actor.all_dirty = true;
            actor.dirty.iter_mut().for_each(|d| *d = false);
            actor.seq_in.iter_mut().for_each(|q| *q = 0);
            actor.seq_out.iter_mut().for_each(|q| *q = 0);
            actor.outbox.iter_mut().for_each(Vec::clear);
            actor.staged.clear();
        }
        self.pending_env.clear();
        self.obs = world.observation_snapshot();
    }

    fn stats(&self) -> MessageStats {
        self.stats
    }

    fn shards(&self) -> usize {
        self.actors.len()
    }
}

#[cfg(test)]
mod tests {
    //! Engine-level lockstep: the distributed tier must walk the exact
    //! trajectory of the shared-memory engine on a plain guarded algorithm
    //! (the facade-level differential suite covers the composed committee
    //! algorithms).

    use super::*;
    use sscc_hypergraph::generators;
    use sscc_runtime::algorithm::GuardedAlgorithm;
    use sscc_runtime::ctx::StateAccess;
    use sscc_runtime::daemon::DistributedRandom;

    /// Max-propagation: adopt the neighborhood maximum when larger.
    struct MaxProp;
    impl GuardedAlgorithm for MaxProp {
        type State = u32;
        type Env = ();
        fn action_count(&self) -> usize {
            1
        }
        fn action_name(&self, _: ActionId) -> String {
            "adopt".into()
        }
        fn initial_state(&self, h: &Hypergraph, me: usize) -> u32 {
            // A deliberately non-monotone seed so shards exchange traffic.
            (h.id(me).0 * 7) % 23
        }
        fn priority_action<S: StateAccess<u32> + ?Sized>(
            &self,
            ctx: &Ctx<'_, u32, (), S>,
        ) -> Option<ActionId> {
            let best = ctx.neighbor_states().map(|(_, s)| *s).max().unwrap_or(0);
            (best > *ctx.my_state()).then_some(0)
        }
        fn execute<S: StateAccess<u32> + ?Sized>(
            &self,
            ctx: &Ctx<'_, u32, (), S>,
            _: ActionId,
        ) -> u32 {
            ctx.neighbor_states().map(|(_, s)| *s).max().unwrap()
        }
    }

    #[test]
    fn lockstep_with_sequential_world_on_maxprop() {
        for shards in [2usize, 3, 4] {
            for seed in 0..5u64 {
                let h = Arc::new(generators::ring(24, 2));
                let mut seq = World::new(Arc::clone(&h), MaxProp);
                let mut dw = World::new(Arc::clone(&h), MaxProp);
                let mut dist = DistEngine::new(&dw, shards, false);
                let mut d_seq = DistributedRandom::new(seed, 0.5);
                let mut d_dist = DistributedRandom::new(seed, 0.5);
                let mut out_seq = StepOutcome::default();
                let mut out_dist = StepOutcome::default();
                for step in 0..200 {
                    seq.step_into(&mut d_seq, &(), &mut out_seq);
                    dist.step_into(&mut dw, &mut d_dist, &(), &mut out_dist);
                    assert_eq!(out_seq.enabled, out_dist.enabled, "step {step}");
                    assert_eq!(out_seq.executed, out_dist.executed, "step {step}");
                    assert_eq!(seq.states(), dw.states(), "step {step}");
                    assert_eq!(seq.steps(), dw.steps(), "step {step}");
                    if out_seq.enabled.is_empty() {
                        break;
                    }
                }
                assert!(
                    out_seq.enabled.is_empty(),
                    "maxprop terminates within the budget"
                );
                assert!(dist.stats().frames > 0, "shards exchanged traffic");
            }
        }
    }

    #[test]
    fn single_shard_plan_sends_nothing() {
        // A clamped one-shard tier still runs (and never sends a frame).
        let h = Arc::new(generators::fig1());
        let mut dw = World::new(Arc::clone(&h), MaxProp);
        let mut dist = DistEngine::new(&dw, 1, false);
        let mut daemon = DistributedRandom::new(3, 0.5);
        let mut out = StepOutcome::default();
        for _ in 0..100 {
            dist.step_into(&mut dw, &mut daemon, &(), &mut out);
            if out.enabled.is_empty() {
                break;
            }
        }
        assert!(out.enabled.is_empty());
        assert_eq!(dist.stats().frames, 0);
        assert_eq!(dist.shards(), 1);
    }
}
