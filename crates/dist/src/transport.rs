//! The boundary transport seam: how serialized frames travel between
//! shard actors.
//!
//! The engine only ever talks to [`BoundaryTransport`], so the delivery
//! substrate is swappable: the in-process [`ChannelTransport`] ships now
//! (one mpsc channel per receiving shard), and a socket backend slots in
//! later behind the same three methods without touching the engine or the
//! frame format. The contract is deliberately weak — per-channel FIFO, no
//! global ordering — because that is all a real network gives; the causal
//! metadata in the frames (step tags, per-channel sequence numbers) is
//! what turns weak delivery back into step-boundary consistency.

use std::sync::mpsc::{channel, Receiver, Sender};

/// Delivery substrate for serialized boundary frames.
///
/// Contract: frames sent on one `(sender, receiver)` channel arrive in
/// send order (per-channel FIFO); nothing is promised across channels.
/// Every frame sent before a [`BoundaryTransport::drain_into`] call is
/// visible to that call (the in-process transport is synchronous; a socket
/// backend would block the coordinator's phase barrier on delivery).
pub trait BoundaryTransport {
    /// Number of shard endpoints.
    fn shards(&self) -> usize;

    /// Enqueue one serialized frame for shard `to`.
    fn send(&mut self, to: usize, frame: Vec<u8>);

    /// Move every pending frame addressed to `shard` into `out` (cleared
    /// first), in arrival order.
    fn drain_into(&mut self, shard: usize, out: &mut Vec<Vec<u8>>);
}

/// The in-process transport: one `std::sync::mpsc` channel per receiving
/// shard. Deterministic — the coordinator drives actors in shard order, so
/// arrival order is a pure function of the step protocol.
pub struct ChannelTransport {
    txs: Vec<Sender<Vec<u8>>>,
    rxs: Vec<Receiver<Vec<u8>>>,
}

impl ChannelTransport {
    /// A transport connecting `shards` endpoints.
    pub fn new(shards: usize) -> Self {
        let (txs, rxs) = (0..shards).map(|_| channel()).unzip();
        ChannelTransport { txs, rxs }
    }
}

impl BoundaryTransport for ChannelTransport {
    fn shards(&self) -> usize {
        self.txs.len()
    }

    fn send(&mut self, to: usize, frame: Vec<u8>) {
        self.txs[to]
            .send(frame)
            .expect("the transport owns both channel ends; the receiver cannot be dropped");
    }

    fn drain_into(&mut self, shard: usize, out: &mut Vec<Vec<u8>>) {
        out.clear();
        while let Ok(frame) = self.rxs[shard].try_recv() {
            out.push(frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_channel_fifo_and_isolation() {
        let mut t = ChannelTransport::new(3);
        assert_eq!(t.shards(), 3);
        t.send(1, vec![1]);
        t.send(2, vec![9]);
        t.send(1, vec![2]);
        let mut got = Vec::new();
        t.drain_into(1, &mut got);
        assert_eq!(got, vec![vec![1], vec![2]], "FIFO, only shard 1's frames");
        t.drain_into(1, &mut got);
        assert!(got.is_empty(), "drain consumes");
        t.drain_into(2, &mut got);
        assert_eq!(got, vec![vec![9]]);
        t.drain_into(0, &mut got);
        assert!(got.is_empty());
    }
}
