//! The boundary-state frame: the one wire format shard actors exchange.
//!
//! A frame is a batch of `(vertex, state)` pairs — the boundary states one
//! sender shard committed this step that one receiver shard's guards read —
//! plus the causal metadata that keeps ghost reads aligned to step
//! boundaries: the **step tag** (the logical clock of the committing step)
//! and a gap-free per-channel **sequence number**. States are serialized
//! with the same [`StateCodec`] implementations the checkpoint writer uses,
//! so any state type that can be persisted can cross a shard boundary.
//!
//! Decoding is **total and fail-closed**, mirroring the persistence
//! container: a magic tag rejects foreign bytes, a version byte rejects
//! future formats, and a trailing FNV-1a checksum over the whole payload
//! rejects any bit flip — every corruption decodes to `None`, never to a
//! wrong frame and never to a panic. (Inside the in-process transport a
//! corrupt frame is impossible; the posture is for the socket backends the
//! [`BoundaryTransport`](crate::transport::BoundaryTransport) seam admits,
//! where the bytes really do cross a machine boundary.)

use sscc_runtime::wire::{put_u16, put_u32, put_u64, put_u8, put_varint, Reader, StateCodec};

/// Magic tag opening every boundary frame.
pub const FRAME_MAGIC: u16 = 0xD157;

/// Current frame format version.
pub const FRAME_VERSION: u8 = 1;

/// FNV-1a 64-bit checksum (the same construction the persistence container
/// uses; duplicated here because `sscc-persist` sits above the core crate
/// this tier plugs into, so depending on it would be circular).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One batch of boundary states from shard `from` to shard `to`, committed
/// at step `step`, carrying per-channel sequence number `seq`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundaryFrame<S> {
    /// Sender shard.
    pub from: usize,
    /// Receiver shard.
    pub to: usize,
    /// Logical clock of the committing step (0-based step tag). A receiver
    /// applies step-`t` frames while preparing step `t + 1`, so ghost
    /// values always hold the pre-step configuration — the
    /// composite-atomicity alignment the debug asserts in the engine pin.
    pub step: u64,
    /// Gap-free per-`(from, to)`-channel sequence number, starting at 1.
    /// Strict monotonicity is the loss/reorder detector: the in-process
    /// transport can never trip it, a future socket backend can.
    pub seq: u64,
    /// The `(dense vertex, committed state)` pairs, ascending by vertex.
    pub entries: Vec<(usize, S)>,
}

impl<S: StateCodec> BoundaryFrame<S> {
    /// Serialize the frame: header, entries, trailing FNV-1a checksum over
    /// everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40 + self.entries.len() * 8);
        put_u16(&mut out, FRAME_MAGIC);
        put_u8(&mut out, FRAME_VERSION);
        put_u32(&mut out, self.from as u32);
        put_u32(&mut out, self.to as u32);
        put_u64(&mut out, self.step);
        put_u64(&mut out, self.seq);
        put_varint(&mut out, self.entries.len() as u64);
        for (v, s) in &self.entries {
            put_u32(&mut out, *v as u32);
            s.encode(&mut out);
        }
        let sum = fnv1a64(&out);
        put_u64(&mut out, sum);
        out
    }

    /// Deserialize a frame; `None` on any truncation, corruption, unknown
    /// version, or trailing garbage — fail closed, never panic.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 {
            return None;
        }
        let (payload, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let sum = u64::from_le_bytes(sum_bytes.try_into().ok()?);
        if fnv1a64(payload) != sum {
            return None;
        }
        let mut r = Reader::new(payload);
        if r.u16()? != FRAME_MAGIC {
            return None;
        }
        if r.u8()? != FRAME_VERSION {
            return None;
        }
        let from = r.u32()? as usize;
        let to = r.u32()? as usize;
        let step = r.u64()?;
        let seq = r.u64()?;
        let count = r.varint()?;
        // Each entry is at least 4 bytes of vertex id: a count claiming
        // more entries than bytes remain is corrupt, not a huge allocation.
        if count > (r.remaining() as u64) / 4 {
            return None;
        }
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let v = r.u32()? as usize;
            let s = S::decode(&mut r)?;
            entries.push((v, s));
        }
        if !r.is_empty() {
            return None;
        }
        Some(BoundaryFrame {
            from,
            to,
            step,
            seq,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BoundaryFrame<u32> {
        BoundaryFrame {
            from: 1,
            to: 3,
            step: 41,
            seq: 7,
            entries: vec![(2, 10), (5, 0), (9, u32::MAX)],
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let f = sample();
        assert_eq!(BoundaryFrame::<u32>::decode(&f.encode()), Some(f));
        let empty = BoundaryFrame::<u32> {
            from: 0,
            to: 1,
            step: 0,
            seq: 1,
            entries: vec![],
        };
        assert_eq!(BoundaryFrame::<u32>::decode(&empty.encode()), Some(empty));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    /// Rewrite the trailing checksum so a deliberately patched payload is
    /// otherwise self-consistent — isolates the header checks from the
    /// checksum check.
    fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
        let n = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..n]);
        bytes[n..].copy_from_slice(&sum.to_le_bytes());
        bytes
    }

    #[test]
    fn truncation_sweep_fails_closed() {
        // Mirrors the persistence container's posture: every prefix of a
        // valid frame decodes to `None`, never to a partial frame or panic.
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert_eq!(
                BoundaryFrame::<u32>::decode(&bytes[..len]),
                None,
                "prefix of {len} bytes must be rejected"
            );
        }
    }

    #[test]
    fn bit_flip_sweep_fails_closed() {
        // Any single bit flip — payload or checksum — must be caught.
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[i] ^= 1 << bit;
                assert_eq!(
                    BoundaryFrame::<u32>::decode(&flipped),
                    None,
                    "flip of byte {i} bit {bit} must be rejected"
                );
            }
        }
    }

    #[test]
    fn foreign_magic_and_future_version_rejected() {
        // A resealed frame with a wrong magic or a future version must be
        // rejected by the header checks, not merely the checksum.
        let bytes = sample().encode();
        let mut foreign = bytes.clone();
        foreign[0] ^= 0xFF;
        assert_eq!(BoundaryFrame::<u32>::decode(&reseal(foreign)), None);
        let mut future = bytes.clone();
        future[2] = FRAME_VERSION + 1;
        assert_eq!(BoundaryFrame::<u32>::decode(&reseal(future)), None);
    }

    #[test]
    fn oversized_count_is_rejected_without_allocating() {
        // Patch the entry count to an absurd value and reseal: the count
        // sanity check fires before `Vec::with_capacity` can see it.
        let empty = BoundaryFrame::<u32> {
            from: 0,
            to: 1,
            step: 3,
            seq: 1,
            entries: vec![],
        };
        let mut bytes = empty.encode();
        // Varint count sits right before the checksum in an empty frame.
        let pos = bytes.len() - 9;
        assert_eq!(bytes[pos], 0, "empty frame carries a zero count");
        bytes[pos] = 0x7F;
        assert_eq!(BoundaryFrame::<u32>::decode(&reseal(bytes)), None);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        // Appending bytes breaks the checksum position; a frame must parse
        // exactly, not as a prefix.
        let mut bytes = sample().encode();
        bytes.push(0);
        assert_eq!(BoundaryFrame::<u32>::decode(&bytes), None);
    }
}
