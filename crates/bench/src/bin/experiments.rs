//! Regenerates every experiment table of EXPERIMENTS.md (E1–E13).
//!
//! ```sh
//! cargo run -p sscc-bench --release --bin experiments           # everything
//! cargo run -p sscc-bench --release --bin experiments e5 e7    # a subset
//! ```

use sscc_core::sim::{default_daemon, Sim};
use sscc_core::{
    choice, Cc1, Cc2, CommitteeAlgorithm, CommitteeView, EagerPolicy, RequestFlags, ScriptedPolicy,
    Status,
};
use sscc_hypergraph::{generators, matching, network, EdgeId, Hypergraph, MutationBias};
use sscc_metrics::{
    cc1_starvation_on_fig2, degree_row, f2, parallel_map, throughput_row, waiting_row, AlgoKind,
    Boot, DegreeConfig, PolicyKind, Table,
};
use sscc_runtime::prelude::{Ctx, Synchronous, World};
use sscc_token::{token_holders, LeaderElect, TokenRing};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|s| s.to_lowercase()).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);

    println!("# SSCC experiment suite (paper: Bonakdarpour, Devismes, Petit — IPDPS'11/JPDC'16)\n");
    if want("e1") {
        e1_figures_model();
    }
    if want("e2") {
        e2_impossibility();
    }
    if want("e3") {
        e3_fig3();
    }
    if want("e4") {
        e4_fig4();
    }
    if want("e5") {
        e5_degree(
            AlgoKind::Cc2,
            "E5 — degree of fair concurrency, CC2 (Thm 4/5)",
        );
    }
    if want("e6") {
        e5_degree(
            AlgoKind::Cc3,
            "E6 — degree of fair concurrency, CC3 (Thm 7/8)",
        );
    }
    if want("e7") {
        e7_waiting();
    }
    if want("e8") {
        e8_max_concurrency();
    }
    if want("e9") {
        e9_snap();
    }
    if want("e10") {
        e10_token();
    }
    if want("e11") {
        e11_throughput();
    }
    if want("e12") {
        e12_choice_ablation();
    }
    if want("e13") {
        e13_campaigns();
    }
}

/// E1 — Figure 1 (+ Figure 2 analysis): model construction facts.
fn e1_figures_model() {
    println!("## E1 — Figure 1/2 model facts\n");
    let mut t = Table::new([
        "topology",
        "n",
        "|E|",
        "network edges",
        "diameter",
        "minMM",
        "maxMM",
        "MaxMin",
        "MaxHEdge",
    ]);
    for name in ["fig1", "fig2", "fig3", "fig4"] {
        let h = match name {
            "fig1" => generators::fig1(),
            "fig2" => generators::fig2(),
            "fig3" => generators::fig3(),
            _ => generators::fig4(),
        };
        let edges: usize = (0..h.n()).map(|v| h.neighbors(v).len()).sum::<usize>() / 2;
        t.row([
            name.to_string(),
            h.n().to_string(),
            h.m().to_string(),
            edges.to_string(),
            network::diameter(&h).to_string(),
            matching::min_maximal_matching_size(&h).to_string(),
            matching::max_matching_size(&h).to_string(),
            h.max_min().to_string(),
            h.max_hedge().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("(paper check: fig1's underlying network has 10 edges and diameter 2)\n");
}

/// E2 — Theorem 1: the alternating adversary starves professor 5 under CC1;
/// CC2 starves nobody.
fn e2_impossibility() {
    println!("## E2 — Theorem 1 impossibility (Figure 2 gadget)\n");
    let h = Arc::new(generators::fig2());
    let budget = 40_000;
    let out = cc1_starvation_on_fig2(7, budget);
    let mut t = Table::new([
        "algorithm",
        "environment",
        "p1",
        "p2",
        "p3",
        "p4",
        "p5",
        "meetings",
        "violations",
    ]);
    let p = |raw: u32| out.participations[h.dense_of(raw)].to_string();
    t.row([
        "CC1".into(),
        "alternating adversary".into(),
        p(1),
        p(2),
        p(3),
        p(4),
        p(5),
        out.convened.to_string(),
        out.violations.to_string(),
    ]);
    let mut cc2 = sscc_core::sim::Cc2Sim::standard(Arc::clone(&h), 7, 2);
    cc2.run(budget);
    let parts = cc2.ledger().participations();
    let q = |raw: u32| parts[h.dense_of(raw)].to_string();
    t.row([
        "CC2".into(),
        "eager (maxDisc=2)".into(),
        q(1),
        q(2),
        q(3),
        q(4),
        q(5),
        cc2.ledger().convened_count().to_string(),
        cc2.monitor().violations().len().to_string(),
    ]);
    println!("{}", t.render());
    println!("(shape: CC1 keeps p5 at exactly 0 forever; CC2 gives everyone meetings)\n");
}

/// E3 — Figure 3 walkthrough summary.
fn e3_fig3() {
    println!("## E3 — Figure 3 walkthrough (CC1 ∘ TC, synchronous daemon)\n");
    let h = Arc::new(generators::fig3());
    let mut mask = vec![true; h.n()];
    mask[h.dense_of(4)] = false;
    let ring = TokenRing::new(&h);
    let mut sim = Sim::new(
        Arc::clone(&h),
        Cc1::new(),
        ring,
        Box::new(Synchronous),
        Box::new(ScriptedPolicy::new(mask, 1)),
    );
    sim.run(120);
    let mut t = Table::new(["committee", "convenes in first 120 steps"]);
    let mut counts = vec![0usize; h.m()];
    for m in sim.ledger().post_initial_instances() {
        counts[m.edge.index()] += 1;
    }
    for e in h.edge_ids() {
        t.row([
            format!("{:?}", h.members_raw(e)),
            counts[e.index()].to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "professor 4 participations: {} (stays idle, as in the figure); spec clean: {}\n",
        sim.ledger().participations()[h.dense_of(4)],
        sim.monitor().clean()
    );
}

/// E4 — Figure 4: the lock bit reroutes professor 9.
fn e4_fig4() {
    println!("## E4 — Figure 4 locking (CC2)\n");
    use sscc_core::Cc2State;
    let h = generators::fig4();
    let d = |raw: u32| h.dense_of(raw);
    let st = |s: Status, p: Option<u32>, tb: bool, l: bool| Cc2State {
        s,
        p: p.map(EdgeId),
        t: tb,
        l,
        cursor: 0,
    };
    let mut states = vec![Cc2State::looking(); h.n()];
    states[d(1)] = st(Status::Looking, Some(0), true, true);
    states[d(2)] = st(Status::Looking, Some(0), false, true);
    states[d(8)] = st(Status::Looking, Some(0), false, true);
    states[d(5)] = st(Status::Waiting, Some(1), false, true);
    states[d(3)] = st(Status::Waiting, Some(1), false, false);
    states[d(4)] = st(Status::Waiting, Some(1), false, false);
    let env = RequestFlags::new(h.n());
    let cc = Cc2::new();
    let ctx = Ctx::new(&h, d(9), &states, &env);
    let a = cc.priority_action(&ctx, false).expect("9 is enabled");
    let (next, _) = cc.execute(&ctx, a, false);
    println!(
        "professor 9's priority action: {} -> points at {:?}",
        cc.action_name(a),
        next.pointer().map(|e| h.members_raw(e))
    );
    println!("(paper: \"he will select {{6,7,9}} by action Step13\")\n");
}

/// E5/E6 — degree of fair concurrency with the Theorem 4/5 (7/8) bounds.
fn e5_degree(algo: AlgoKind, title: &str) {
    println!("## {title}\n");
    let cfg = DegreeConfig {
        budget: 80_000,
        seeds: 24,
    };
    let mut t = Table::new([
        "topology",
        "measured min",
        "measured max",
        "exact bound",
        "closed-form bound",
        "minMM",
        "quiesced",
        "bound holds",
    ]);
    for (name, h) in corpus_small() {
        let row = degree_row(&name, &h, algo, &cfg);
        t.row([
            row.name.clone(),
            row.measured_min.to_string(),
            row.measured_max.to_string(),
            row.exact_bound.to_string(),
            row.closed_bound.to_string(),
            row.min_mm.to_string(),
            format!("{}/{}", row.quiesced.0, row.quiesced.1),
            row.holds().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("(shape: measured min >= exact bound >= closed-form bound, every row)\n");
}

/// E7 — waiting time vs n and maxDisc (Theorem 6: O(maxDisc × n) rounds).
fn e7_waiting() {
    println!("## E7 — waiting time, CC2 (Thm 6)\n");
    let mut t = Table::new([
        "ring k",
        "n",
        "maxDisc",
        "max wait (rounds)",
        "mean wait",
        "maxDisc*n",
        "wait / (maxDisc*n)",
    ]);
    for k in [3usize, 6, 9, 12] {
        let h = Arc::new(generators::ring(k, 2));
        for max_disc in [1u64, 4, 8] {
            let row = waiting_row("ring", &h, AlgoKind::Cc2, max_disc, 8, 60_000);
            t.row([
                k.to_string(),
                row.n.to_string(),
                max_disc.to_string(),
                row.max_wait.to_string(),
                f2(row.mean_wait),
                row.thm6_scale.to_string(),
                f2(row.max_wait as f64 / row.thm6_scale as f64),
            ]);
        }
    }
    println!("{}", t.render());
    println!("(shape: the ratio column stays O(1) as n and maxDisc grow)\n");
}

/// E8 — maximal concurrency: CC1 quiesces on maximal matchings; CC2's
/// quiescent meetings can leave a free committee blocked.
fn e8_max_concurrency() {
    println!("## E8 — maximal concurrency (Def. 2, Lemma 7)\n");
    let mut t = Table::new([
        "topology",
        "seeds",
        "CC1 quiescent sets maximal",
        "spec clean",
    ]);
    for (name, h) in corpus_small() {
        let results = parallel_map(0..8u64, |seed| {
            let mut sim = sscc_metrics::build_sim(
                AlgoKind::Cc1,
                Arc::clone(&h),
                seed,
                PolicyKind::InfiniteMeetings,
                Boot::Clean,
            );
            // Meeting-set quiescence (the token may circulate forever).
            let mut streak = 0u64;
            let mut last = sim.ledger().live_edges();
            for _ in 0..150_000u64 {
                if !sim.step() {
                    break;
                }
                let now = sim.ledger().live_edges();
                if now == last {
                    streak += 1;
                    if streak > 2_000 {
                        break;
                    }
                } else {
                    streak = 0;
                    last = now;
                }
            }
            (
                matching::is_maximal_matching(&h, &sim.ledger().live_edges()),
                sim.monitor().clean(),
            )
        });
        let maximal = results.iter().filter(|r| r.0).count();
        let clean = results.iter().all(|r| r.1);
        t.row([
            name,
            results.len().to_string(),
            format!("{maximal}/{}", results.len()),
            clean.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("(CC2's blocked-committee counterexample is tests/max_concurrency.rs::e8_cc2_blocks_a_free_committee_forever)\n");
}

/// E9 — snap-stabilization from arbitrary configurations.
fn e9_snap() {
    println!("## E9 — snap-stabilization (arbitrary initial configurations)\n");
    let mut t = Table::new([
        "topology",
        "algo",
        "faulty boots",
        "violations",
        "runs with progress",
        "mean steps to 1st meeting",
    ]);
    for (name, h) in corpus_small() {
        for algo in [AlgoKind::Cc1, AlgoKind::Cc2, AlgoKind::Cc3] {
            let outs = parallel_map(0..16u64, |seed| {
                let mut sim = sscc_metrics::build_sim(
                    algo,
                    Arc::clone(&h),
                    seed,
                    PolicyKind::Eager { max_disc: 1 },
                    Boot::Arbitrary(seed.wrapping_mul(0x9e3779b97f4a7c15)),
                );
                let mut first = None;
                for _ in 0..20_000u64 {
                    if sim.ledger().convened_count() > 0 {
                        first = Some(sim.steps());
                        break;
                    }
                    if !sim.step() {
                        break;
                    }
                }
                (sim.monitor().violations().len(), first)
            });
            let violations: usize = outs.iter().map(|o| o.0).sum();
            let progressed = outs.iter().filter(|o| o.1.is_some()).count();
            let mean_first = {
                let xs: Vec<u64> = outs.iter().filter_map(|o| o.1).collect();
                if xs.is_empty() {
                    f64::NAN
                } else {
                    xs.iter().sum::<u64>() as f64 / xs.len() as f64
                }
            };
            t.row([
                name.clone(),
                algo.label().to_string(),
                outs.len().to_string(),
                violations.to_string(),
                format!("{progressed}/{}", outs.len()),
                f2(mean_first),
            ]);
        }
    }
    println!("{}", t.render());
    println!("(shape: zero violations everywhere — stabilization time is 0 by construction)\n");
}

/// E10 — the token substrate in isolation (Property 1).
fn e10_token() {
    println!("## E10 — token substrate (Property 1)\n");
    let mut t = Table::new([
        "ring k",
        "n",
        "tour len",
        "mean steps to 1 token (sync)",
        "max",
        "LE mean steps",
    ]);
    for k in [4usize, 8, 16, 32] {
        let h = Arc::new(generators::ring(k, 2));
        let stats = parallel_map(0..16u64, |seed| {
            let ring = TokenRing::new(&h);
            let mut w = World::new(Arc::clone(&h), TokenRing::new(&h));
            sscc_runtime::prelude::strike(&mut w, seed);
            let mut d = Synchronous;
            let mut steps = 0u64;
            while ring.privileged_position_count(&h, w.states()) > 1 {
                w.step(&mut d, &());
                steps += 1;
                assert!(steps < 2_000_000);
            }
            // Leader election convergence from arbitrary states.
            let mut wl = World::new(Arc::clone(&h), LeaderElect);
            sscc_runtime::prelude::strike(&mut wl, seed);
            let (le_steps, ok) = wl.run_to_quiescence(&mut Synchronous, &(), 2_000_000);
            assert!(ok);
            (steps, le_steps)
        });
        let tok: Vec<u64> = stats.iter().map(|s| s.0).collect();
        let le: Vec<u64> = stats.iter().map(|s| s.1).collect();
        let ring = TokenRing::new(&h);
        t.row([
            k.to_string(),
            h.n().to_string(),
            ring.tour().len().to_string(),
            f2(tok.iter().sum::<u64>() as f64 / tok.len() as f64),
            tok.iter().max().unwrap().to_string(),
            f2(le.iter().sum::<u64>() as f64 / le.len() as f64),
        ]);
    }
    println!("{}", t.render());
    // Single-token invariant spot check.
    let h = Arc::new(generators::fig1());
    let ring = TokenRing::new(&h);
    let states: Vec<_> = (0..h.n())
        .map(|p| sscc_token::TokenLayer::initial_state(&ring, &h, p))
        .collect();
    println!(
        "clean boot holders: {:?} (exactly one, at the tour root)\n",
        token_holders(&ring, &h, &states)
    );
}

/// E11 — throughput / fairness trade-off table.
fn e11_throughput() {
    println!("## E11 — throughput and starvation (CC1 vs CC2 vs CC3)\n");
    let mut t = Table::new([
        "topology",
        "algo",
        "meetings/1k-steps",
        "mean live",
        "worst starved",
        "min participations",
        "violations",
    ]);
    for (name, h) in corpus_small() {
        for algo in [AlgoKind::Cc1, AlgoKind::Cc2, AlgoKind::Cc3] {
            let row = throughput_row(
                &name,
                &h,
                algo,
                PolicyKind::Eager { max_disc: 2 },
                8,
                30_000,
            );
            t.row([
                name.clone(),
                algo.label().to_string(),
                f2(row.meetings_per_kstep),
                f2(row.mean_live),
                row.max_starved.to_string(),
                row.min_participations.to_string(),
                row.violations.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("(shape: CC2/CC3 rows always show 0 starved; CC1 may starve under adversarial");
    println!(" environments — see E2 — though benign random load rarely exhibits it)\n");
}

/// E12 — committee-choice strategy ablation on CC1.
fn e12_choice_ablation() {
    println!("## E12 — choice-strategy ablation (CC1, Step21's ε ∈ FreeEdges_p)\n");
    let mut t = Table::new(["topology", "strategy", "meetings/1k-steps", "violations"]);
    for (name, h) in corpus_small() {
        for strat in ["max-members", "min-size", "lowest-index"] {
            let outs = parallel_map(0..6u64, |seed| {
                let ring = TokenRing::new(&h);
                let mut sim: Box<dyn FnMut(u64) -> (usize, u64, usize)> = match strat {
                    "max-members" => {
                        let mut s = Sim::new(
                            Arc::clone(&h),
                            Cc1::with_choice(choice::MaxMembersDesc),
                            ring,
                            default_daemon(seed, h.n()),
                            Box::new(EagerPolicy::new(h.n(), 2)),
                        );
                        Box::new(move |b| {
                            s.run(b);
                            (
                                s.ledger().convened_count(),
                                s.steps(),
                                s.monitor().violations().len(),
                            )
                        })
                    }
                    "min-size" => {
                        let mut s = Sim::new(
                            Arc::clone(&h),
                            Cc1::with_choice(choice::MinSizeFirst),
                            ring,
                            default_daemon(seed, h.n()),
                            Box::new(EagerPolicy::new(h.n(), 2)),
                        );
                        Box::new(move |b| {
                            s.run(b);
                            (
                                s.ledger().convened_count(),
                                s.steps(),
                                s.monitor().violations().len(),
                            )
                        })
                    }
                    _ => {
                        let mut s = Sim::new(
                            Arc::clone(&h),
                            Cc1::with_choice(choice::LowestIndex),
                            ring,
                            default_daemon(seed, h.n()),
                            Box::new(EagerPolicy::new(h.n(), 2)),
                        );
                        Box::new(move |b| {
                            s.run(b);
                            (
                                s.ledger().convened_count(),
                                s.steps(),
                                s.monitor().violations().len(),
                            )
                        })
                    }
                };
                sim(20_000)
            });
            let rate = outs
                .iter()
                .map(|&(c, s, _)| c as f64 * 1000.0 / s.max(1) as f64)
                .sum::<f64>()
                / outs.len() as f64;
            let viol: usize = outs.iter().map(|o| o.2).sum();
            t.row([name.clone(), strat.to_string(), f2(rate), viol.to_string()]);
        }
    }
    println!("{}", t.render());
    println!(
        "(any deterministic choice is a valid refinement; throughput differences are modest)\n"
    );
}

/// E13 — sustained-fault and churn campaigns: recovery-time and
/// safety-window distributions per algorithm × topology family. Snap-
/// stabilization under fire: every recovery window must record zero
/// violations, with no reset of the observers across disruptions.
fn e13_campaigns() {
    use sscc_metrics::{campaign_table, run_campaign, CampaignConfig, CampaignReport, CampaignRow};
    println!("## E13 — fault/churn campaigns (snap-stabilization under fire)\n");
    let topologies: Vec<(String, Arc<Hypergraph>)> = vec![
        ("tree48".into(), Arc::new(generators::tree_pairs(48, 5))),
        ("grid6x8".into(), Arc::new(generators::grid_pairs(6, 8))),
        (
            "powerlaw48".into(),
            Arc::new(generators::power_law(48, 48, 9)),
        ),
        ("ring24x2".into(), Arc::new(generators::ring(24, 2))),
    ];
    let seeds = 10u64;
    let merge = |reports: Vec<CampaignReport>| {
        let mut m = CampaignReport::default();
        for r in reports {
            m.recovery.extend(r.recovery);
            m.safety_windows.extend(r.safety_windows);
            m.unrecovered += r.unrecovered;
            m.convened += r.convened;
            m.violations += r.violations;
            m.faults_injected += r.faults_injected;
            m.mutations_applied += r.mutations_applied;
            m.mutations_rejected += r.mutations_rejected;
        }
        m
    };
    for (churn_every, title) in [
        (0u64, "sustained transient faults only"),
        (250u64, "transient faults + topology churn"),
    ] {
        println!(
            "### {title} (fault_every=400, fraction=0.33, churn_every={churn_every}, \
             {seeds} seeds x 4000 steps, par1, aggregated)\n"
        );
        let mut rows = Vec::new();
        for (name, h) in &topologies {
            for algo in [AlgoKind::Cc1, AlgoKind::Cc2, AlgoKind::Cc3] {
                let reports = parallel_map(0..seeds, |seed| {
                    let cfg = CampaignConfig {
                        steps: 4_000,
                        fault_every: 400,
                        fault_fraction: 0.33,
                        churn_every,
                        seed,
                        bias: MutationBias::Balanced,
                    };
                    run_campaign(algo, Arc::clone(h), "par1", &cfg)
                });
                rows.push(CampaignRow {
                    algo: algo.label(),
                    topology: name.clone(),
                    report: merge(reports),
                });
            }
        }
        println!("{}", campaign_table(&rows).render());
        println!(
            "(snap-stabilization: the max-safety-window and violations columns must be all-0)\n"
        );
    }
}

/// The sub-corpus small enough for exact bound computation everywhere.
fn corpus_small() -> Vec<(String, Arc<Hypergraph>)> {
    vec![
        ("fig1".into(), Arc::new(generators::fig1())),
        ("fig2".into(), Arc::new(generators::fig2())),
        ("fig4".into(), Arc::new(generators::fig4())),
        ("ring6x2".into(), Arc::new(generators::ring(6, 2))),
        ("ring5x3".into(), Arc::new(generators::ring(5, 3))),
        ("path4x3".into(), Arc::new(generators::path(4, 3))),
        ("star4x3".into(), Arc::new(generators::star(4, 3))),
    ]
}
