//! Records the performance trajectory of the step engine — steady-state
//! steps/sec for every algorithm on large rings across engine modes — and
//! gates CI against throughput regressions.
//!
//! ```sh
//! # Full trajectory recording (rings n=384/1536/6144, every registry mode):
//! cargo run -p sscc-bench --release --bin perf_record            # BENCH_5.json
//! cargo run -p sscc-bench --release --bin perf_record -- out.json
//!
//! # What can be recorded (the ModeRegistry, with descriptions):
//! cargo run -p sscc-bench --release --bin perf_record -- --list-modes
//!
//! # Subsets, without editing code (CI smoke + local profiling):
//! cargo run -p sscc-bench --release --bin perf_record -- \
//!     --quick --modes @baseline bench_ci.json
//! cargo run -p sscc-bench --release --bin perf_record -- \
//!     --modes par1,poolcommit profile.json
//!
//! # Regression gate: exit 1 if any (algo, topology, mode, threads) pair in
//! # FRESH regressed more than THRESHOLD (default 0.20) below BASELINE:
//! cargo run -p sscc-bench --release --bin perf_record -- \
//!     --compare BENCH_5.json bench_ci.json --threshold 0.20
//!
//! # Snapshot gate: exit 1 if an online snapshot (`Sim::save_state`) on
//! # ring1536 costs more than one steady-state step:
//! cargo run -p sscc-bench --release --bin perf_record -- --snapshot-cost
//! ```
//!
//! The engine modes are **not** defined here: they are the
//! [`ModeRegistry`] — the single source of truth this binary, the
//! differential lockstep suite and the examples all derive from. `--modes`
//! takes registry names (comma-separated), `@baseline` (the modes of the
//! committed BENCH baseline — what CI's quick gate records), or `@all`.

use sscc_bench::bench_json;
use sscc_hypergraph::generators;
use sscc_metrics::{build_sim, AlgoKind, Boot, Mode, ModeRegistry, PolicyKind};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct Record {
    algo: &'static str,
    topology: String,
    n: usize,
    mode: &'static str,
    threads: usize,
    steps: u64,
    secs: f64,
    /// Message volume of the distributed tier across the measured window,
    /// `(frames per step, boundary bytes per step)` — `None` for every
    /// shared-memory mode. The gate's `--compare` join ignores the extra
    /// columns (the parser skips unknown fields), so recording them cannot
    /// perturb the throughput gate.
    messages: Option<(f64, f64)>,
}

impl Record {
    fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / self.secs
    }
}

/// Time `budget` steps of a fresh sim after `warmup` untimed steps (the
/// transient from the clean boot is not steady state), repeating `reps`
/// times and keeping the best wall-clock run.
fn measure(
    algo: AlgoKind,
    h: &Arc<sscc_hypergraph::Hypergraph>,
    mode: &Mode,
    warmup: u64,
    budget: u64,
    reps: usize,
) -> (u64, f64, Option<(f64, f64)>) {
    let mut best = f64::INFINITY;
    let mut steps_done = 0;
    let mut messages = None;
    for _ in 0..reps {
        let mut sim = build_sim(
            algo,
            Arc::clone(h),
            7,
            PolicyKind::Eager { max_disc: 1 },
            Boot::Clean,
        );
        sim.configure(&mode.config)
            .unwrap_or_else(|e| panic!("registry mode {} must validate: {e}", mode.name));
        for _ in 0..warmup {
            if !sim.step() {
                break;
            }
        }
        // Message counters are diffed across exactly the timed window, so
        // the recorded per-step volume matches the throughput measurement.
        let pre = sim.dist_stats();
        let start = Instant::now();
        let mut done = 0;
        for _ in 0..budget {
            if !sim.step() {
                break;
            }
            done += 1;
        }
        let secs = start.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
            steps_done = done;
            messages = sim.dist_stats().zip(pre).map(|(post, pre)| {
                let steps = (post.steps - pre.steps).max(1) as f64;
                (
                    (post.frames - pre.frames) as f64 / steps,
                    (post.bytes - pre.bytes) as f64 / steps,
                )
            });
        }
    }
    (steps_done, best, messages)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn record(out_path: &str, quick: bool, modes: &[&'static Mode]) {
    // (topology, timed budget): bigger worlds get smaller budgets so the
    // full sweep stays a few minutes. The quick sweep's ring384 cell uses
    // the *same* warmup/budget protocol as the committed baseline, so the
    // CI gate's joined pairs measure identical windows of the trajectory.
    // The tree/grid/power-law cells cover the dynamic-topology families at
    // the same scale; cells absent from the committed baseline are simply
    // skipped by the `--compare` join, never gated against nothing.
    type Cell = (String, Arc<sscc_hypergraph::Hypergraph>, u64);
    let cell = |label: &str, h: sscc_hypergraph::Hypergraph, budget: u64| -> Cell {
        (label.to_string(), Arc::new(h), budget)
    };
    let sweep: Vec<Cell> = if quick {
        vec![
            cell("ring96x2", generators::ring(96, 2), 1000),
            cell("ring384x2", generators::ring(384, 2), 3000),
            cell("tree384", generators::tree_pairs(384, 7), 1500),
            cell("grid16x24", generators::grid_pairs(16, 24), 1500),
            cell("powerlaw384", generators::power_law(384, 384, 7), 1500),
        ]
    } else {
        vec![
            cell("ring384x2", generators::ring(384, 2), 3000),
            cell("ring1536x2", generators::ring(1536, 2), 2400),
            cell("ring6144x2", generators::ring(6144, 2), 1000),
        ]
    };
    let warmup = 400;
    let reps = 4;

    let mut records: Vec<Record> = Vec::new();
    for (topology, h, budget) in &sweep {
        for algo in [AlgoKind::Cc1, AlgoKind::Cc2, AlgoKind::Cc3] {
            for mode in modes {
                let threads = mode.config.threads();
                let (steps, secs, messages) = measure(algo, h, mode, warmup, *budget, reps);
                let msg_note = messages.map_or(String::new(), |(frames, bytes)| {
                    format!("  ({frames:.2} frames/step, {bytes:.0} B/step)")
                });
                eprintln!(
                    "{:>4} {topology} {:>14} x{threads}: {:>12.0} steps/s{msg_note}",
                    algo.label(),
                    mode.name,
                    steps as f64 / secs
                );
                records.push(Record {
                    algo: algo.label(),
                    topology: topology.clone(),
                    n: h.n(),
                    mode: mode.name,
                    threads,
                    steps,
                    secs,
                    messages,
                });
            }
        }
    }

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"engine_steps\",\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"warmup_steps\": {warmup},");
    let _ = writeln!(out, "  \"reps\": {reps},");
    let _ = writeln!(
        out,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(0, |p| p.get())
    );
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"algo\": \"{}\", \"topology\": \"{}\", \"n\": {}, \"mode\": \"{}\", \"threads\": {}, \"steps\": {}, \"secs\": {:.6}, \"steps_per_sec\": {:.1}",
            json_escape(r.algo),
            json_escape(&r.topology),
            r.n,
            r.mode,
            r.threads,
            r.steps,
            r.secs,
            r.steps_per_sec()
        );
        // Distributed modes carry their message-volume columns; the gate's
        // comparison parser ignores fields it does not know.
        if let Some((frames, bytes)) = r.messages {
            let _ = write!(
                out,
                ", \"msgs_per_step\": {frames:.3}, \"boundary_bytes_per_step\": {bytes:.1}"
            );
        }
        out.push('}');
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    // Speedup summary per (algo, topology): the headline numbers are the
    // new engine (parX) against the PR-1 sequential incremental baseline.
    // Emitted only when the sweep recorded every referenced mode (a
    // `--modes` subset may not have).
    out.push_str("  ],\n  \"speedups\": [\n");
    let mut lines = Vec::new();
    for (topo, _, _) in &sweep {
        for algo in ["CC1", "CC2", "CC3"] {
            let find = |mode: &str| {
                records
                    .iter()
                    .find(|r| r.algo == algo && &r.topology == topo && r.mode == mode)
                    .map(Record::steps_per_sec)
            };
            let (Some(full), Some(pr1), Some(par1), Some(par2), Some(par4)) = (
                find("full_scan"),
                find("incremental"),
                find("par1"),
                find("par2"),
                find("par4"),
            ) else {
                continue;
            };
            let (Some(inplace), Some(daemon), Some(pool), Some(poolcommit)) = (
                find("inplace"),
                find("daemon"),
                find("pool"),
                find("poolcommit"),
            ) else {
                continue;
            };
            lines.push(format!(
                "    {{\"algo\": \"{algo}\", \"topology\": \"{topo}\", \
                 \"incremental_over_full_scan\": {:.2}, \
                 \"par1_over_sequential_incremental\": {:.2}, \
                 \"par2_over_sequential_incremental\": {:.2}, \
                 \"par4_over_sequential_incremental\": {:.2}, \
                 \"daemon_over_inplace\": {:.2}, \
                 \"pool_over_inplace\": {:.2}, \
                 \"poolcommit_over_inplace\": {:.2}}}",
                pr1 / full,
                par1 / pr1,
                par2 / pr1,
                par4 / pr1,
                daemon / inplace,
                pool / inplace,
                poolcommit / inplace,
            ));
        }
    }
    out.push_str(&lines.join(",\n"));
    out.push_str(if lines.is_empty() {
        "  ]\n}\n"
    } else {
        "\n  ]\n}\n"
    });

    std::fs::write(out_path, out).expect("write bench record");
    eprintln!("wrote {out_path}");
}

fn compare(baseline_path: &str, fresh_path: &str, threshold: f64) -> i32 {
    let baseline = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
    let fresh =
        std::fs::read_to_string(fresh_path).unwrap_or_else(|e| panic!("read {fresh_path}: {e}"));
    match bench_json::compare(&baseline, &fresh, threshold) {
        Ok(report) => {
            eprintln!(
                "compared {} (algo, topology, mode, threads) pairs against {baseline_path} \
                 (threshold -{:.0}%):",
                report.compared,
                threshold * 100.0
            );
            for line in &report.lines {
                eprintln!("  {line}");
            }
            if report.regressions.is_empty() {
                eprintln!("perf gate: OK");
                0
            } else {
                eprintln!(
                    "perf gate: {} steady-state throughput regression(s):",
                    report.regressions.len()
                );
                for line in &report.regressions {
                    eprintln!("  REGRESSED {line}");
                }
                1
            }
        }
        Err(e) => {
            eprintln!("perf gate: cannot compare: {e}");
            1
        }
    }
}

/// Measure the online-snapshot cost against steady-state step latency on
/// the ring1536 cell — the acceptance bound of the checkpoint layer: one
/// snapshot must cost **less than one step**, so a checkpoint-on-tick
/// service never loses more than one step's worth of throughput per
/// checkpoint. Exit 1 when any algorithm breaks the bound.
fn snapshot_cost() -> i32 {
    let h = Arc::new(generators::ring(1536, 2));
    let mut failures = 0;
    eprintln!("snapshot cost vs steady-state step latency (ring1536x2, par1):");
    for algo in [AlgoKind::Cc1, AlgoKind::Cc2, AlgoKind::Cc3] {
        let mut sim = build_sim(
            algo,
            Arc::clone(&h),
            7,
            PolicyKind::Eager { max_disc: 1 },
            Boot::Clean,
        );
        sim.configure_mode("par1").expect("registry mode");
        for _ in 0..400 {
            sim.step();
        }
        let budget = 1200u64;
        let start = Instant::now();
        for _ in 0..budget {
            sim.step();
        }
        let step_secs = start.elapsed().as_secs_f64() / budget as f64;
        // Prime one capture so the seal covers the warmup history — a
        // checkpoint-on-tick service seals incrementally from tick one —
        // then time captures at tick cadence (step, capture, repeat), the
        // shape of the real loop. The capture is the on-critical-path
        // part; the flat blob is assembled afterwards, off-path.
        let prime = sim.snapshot().expect("standard stack must snapshot");
        let mut flat = Vec::new();
        assert!(sim.save_state(&mut flat));
        assert_eq!(
            prime.to_bytes(),
            flat,
            "online snapshot must encode the save_state bytes"
        );
        let mut best = f64::INFINITY;
        let mut last = prime;
        for _ in 0..40 {
            sim.step();
            let start = Instant::now();
            last = sim.snapshot().expect("standard stack must snapshot");
            best = best.min(start.elapsed().as_secs_f64());
        }
        let bytes = last.to_bytes().len();
        let ok = best < step_secs;
        if !ok {
            failures += 1;
        }
        eprintln!(
            "  {:>4}: step {:>8.1} us, snapshot {:>8.1} us ({} bytes assembled) = {:.2}x/step {}",
            algo.label(),
            step_secs * 1e6,
            best * 1e6,
            bytes,
            best / step_secs,
            if ok { "OK" } else { "EXCEEDS one step" },
        );
    }
    if failures == 0 {
        eprintln!("snapshot gate: OK");
        0
    } else {
        eprintln!("snapshot gate: {failures} algorithm(s) exceed one step latency");
        1
    }
}

fn list_modes() {
    eprintln!("registered engine modes (the ModeRegistry; * = BENCH baseline sweep):");
    for m in ModeRegistry::all() {
        eprintln!(
            "  {}{:<15} x{}  {}",
            if m.baseline { "*" } else { " " },
            m.name,
            m.config.threads(),
            m.summary
        );
    }
    eprintln!("select with --modes a,b,c | --modes @baseline | --modes @all");
}

/// Resolve a `--modes` argument against the registry. Unknown names are
/// fatal: a typo'd mode silently skipped would un-gate a whole engine path.
fn resolve_modes(spec: &str) -> Vec<&'static Mode> {
    match spec {
        "@all" => ModeRegistry::all().iter().collect(),
        "@baseline" => ModeRegistry::baseline().collect(),
        list => list
            .split(',')
            .map(|name| {
                ModeRegistry::get(name.trim()).unwrap_or_else(|| {
                    let known: Vec<&str> = ModeRegistry::all().iter().map(|m| m.name).collect();
                    panic!(
                        "unknown engine mode '{name}' (registry: {}, plus @baseline/@all)",
                        known.join(", ")
                    )
                })
            })
            .collect(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--compare") {
        let baseline = args.get(1).expect("--compare BASELINE FRESH");
        let fresh = args.get(2).expect("--compare BASELINE FRESH");
        let threshold = match args.get(3).map(String::as_str) {
            Some("--threshold") => args
                .get(4)
                .and_then(|t| t.parse().ok())
                .expect("--threshold takes a fraction, e.g. 0.20"),
            None => 0.20,
            Some(other) => panic!("unknown argument {other}"),
        };
        std::process::exit(compare(baseline, fresh, threshold));
    }
    let mut quick = false;
    let mut modes: Vec<&'static Mode> = ModeRegistry::all().iter().collect();
    let mut out_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list-modes" => {
                list_modes();
                return;
            }
            "--snapshot-cost" => std::process::exit(snapshot_cost()),
            "--quick" => quick = true,
            "--modes" => {
                let spec = it.next().expect("--modes takes a,b,c | @baseline | @all");
                modes = resolve_modes(&spec);
            }
            flag if flag.starts_with("--") => panic!("unknown argument {flag}"),
            path => out_path = Some(path.to_string()),
        }
    }
    let default = if quick {
        "bench_ci.json"
    } else {
        "BENCH_5.json"
    };
    let out_path = out_path.unwrap_or_else(|| default.to_string());
    record(&out_path, quick, &modes);
}
