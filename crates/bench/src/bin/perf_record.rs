//! Records the performance trajectory of the step engine: steps/sec for
//! every algorithm on growing rings, under both the incremental dirty-set
//! scheduler and the legacy full-scan engine, written as machine-readable
//! JSON (`BENCH_<N>.json`).
//!
//! ```sh
//! cargo run -p sscc-bench --release --bin perf_record            # BENCH_1.json
//! cargo run -p sscc-bench --release --bin perf_record -- out.json
//! ```

use sscc_hypergraph::generators;
use sscc_metrics::{build_sim, AlgoKind, Boot, PolicyKind};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct Record {
    algo: &'static str,
    topology: String,
    n: usize,
    mode: &'static str,
    steps: u64,
    secs: f64,
}

impl Record {
    fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / self.secs
    }
}

/// Time `budget` steps of a fresh sim (after a small untimed warmup build),
/// repeating `reps` times and keeping the best wall-clock run.
fn measure(
    algo: AlgoKind,
    h: &Arc<sscc_hypergraph::Hypergraph>,
    full_scan: bool,
    budget: u64,
    reps: usize,
) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut steps_done = 0;
    for _ in 0..reps {
        let mut sim = build_sim(
            algo,
            Arc::clone(h),
            7,
            PolicyKind::Eager { max_disc: 1 },
            Boot::Clean,
        );
        sim.set_full_scan(full_scan);
        let start = Instant::now();
        let mut done = 0;
        for _ in 0..budget {
            if !sim.step() {
                break;
            }
            done += 1;
        }
        let secs = start.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
            steps_done = done;
        }
    }
    (steps_done, best)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_1.json".to_string());
    let ring_sizes = [24usize, 96, 384];
    let budget = 2_000u64;
    let reps = 3;

    let mut records: Vec<Record> = Vec::new();
    for &k in &ring_sizes {
        let h = Arc::new(generators::ring(k, 2));
        for algo in [AlgoKind::Cc1, AlgoKind::Cc2, AlgoKind::Cc3] {
            for (mode, full_scan) in [("incremental", false), ("full_scan", true)] {
                let (steps, secs) = measure(algo, &h, full_scan, budget, reps);
                eprintln!(
                    "{:>4} {} ring{k}x2 {:>11}: {:>12.0} steps/s",
                    algo.label(),
                    if full_scan { " " } else { "*" },
                    mode,
                    steps as f64 / secs
                );
                records.push(Record {
                    algo: algo.label(),
                    topology: format!("ring{k}x2"),
                    n: h.n(),
                    mode,
                    steps,
                    secs,
                });
            }
        }
    }

    // Speedup summary per (algo, topology).
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"engine_steps\",\n");
    let _ = writeln!(out, "  \"budget_steps\": {budget},");
    let _ = writeln!(out, "  \"reps\": {reps},");
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"algo\": \"{}\", \"topology\": \"{}\", \"n\": {}, \"mode\": \"{}\", \"steps\": {}, \"secs\": {:.6}, \"steps_per_sec\": {:.1}}}",
            json_escape(r.algo),
            json_escape(&r.topology),
            r.n,
            r.mode,
            r.steps,
            r.secs,
            r.steps_per_sec()
        );
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"speedups\": [\n");
    let mut lines = Vec::new();
    for &k in &ring_sizes {
        for algo in ["CC1", "CC2", "CC3"] {
            let topo = format!("ring{k}x2");
            let find = |mode: &str| {
                records
                    .iter()
                    .find(|r| r.algo == algo && r.topology == topo && r.mode == mode)
                    .map(Record::steps_per_sec)
                    .unwrap_or(f64::NAN)
            };
            let speedup = find("incremental") / find("full_scan");
            lines.push(format!(
                "    {{\"algo\": \"{algo}\", \"topology\": \"{topo}\", \"incremental_over_full_scan\": {speedup:.2}}}"
            ));
        }
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  ]\n}\n");

    std::fs::write(&out_path, out).expect("write bench record");
    eprintln!("wrote {out_path}");
}
