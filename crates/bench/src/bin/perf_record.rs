//! Records the performance trajectory of the step engine — steady-state
//! steps/sec for every algorithm on large rings across engine modes — and
//! gates CI against throughput regressions.
//!
//! ```sh
//! # Full trajectory recording (rings n=384/1536/6144, all engine modes):
//! cargo run -p sscc-bench --release --bin perf_record            # BENCH_4.json
//! cargo run -p sscc-bench --release --bin perf_record -- out.json
//!
//! # CI smoke recording (small rings, reduced budgets, same record shape):
//! cargo run -p sscc-bench --release --bin perf_record -- --quick bench_ci.json
//!
//! # Regression gate: exit 1 if any (algo, topology, mode, threads) pair in
//! # FRESH regressed more than THRESHOLD (default 0.20) below BASELINE:
//! cargo run -p sscc-bench --release --bin perf_record -- \
//!     --compare BENCH_4.json bench_ci.json --threshold 0.20
//! ```
//!
//! Engine modes recorded:
//! * `full_scan`    — the legacy `O(n)` per-step engine;
//! * `incremental`  — the **PR-1 sequential incremental engine** (per-guard
//!   reference evaluator, full policy ticks): the trajectory baseline;
//! * `par1`         — sequential drain (fused evaluators + delta-aware
//!   policies);
//! * `par2`/`par4`  — the sharded parallel drain at 2/4 worker threads
//!   (since PR 4 on the **persistent worker pool** — same labels, so the
//!   regression gate tracks the pool against the old scoped spawns);
//! * `inplace`      — monomorphic guard evaluation plus the zero-clone
//!   in-place commit strategy (sequential drain);
//! * `daemon`       — PR 4's daemon-side stack on the sequential engine:
//!   in-place commit + trusted daemon (no per-step selection validation) +
//!   incremental daemon view (delta-fed `WeaklyFair`, no enabled rescans);
//! * `pool`         — the `daemon` stack plus the pooled 2-thread drain;
//! * `poolcommit`   — `pool` plus the parallel commit (execute phase
//!   sharded across the pool for large selections).

use sscc_bench::bench_json;
use sscc_hypergraph::generators;
use sscc_metrics::{build_sim, AlgoKind, AnySim, Boot, PolicyKind};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct Record {
    algo: &'static str,
    topology: String,
    n: usize,
    mode: &'static str,
    threads: usize,
    steps: u64,
    secs: f64,
}

impl Record {
    fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / self.secs
    }
}

/// Pre-run engine configuration hook.
type Configure = fn(&mut AnySim);

/// `(mode label, worker threads, configure)` for every engine mode.
fn modes() -> Vec<(&'static str, usize, Configure)> {
    vec![
        ("full_scan", 1, |s: &mut AnySim| s.set_full_scan(true)),
        ("incremental", 1, |s: &mut AnySim| s.set_pr1_baseline()),
        ("par1", 1, |_s: &mut AnySim| {}),
        ("par2", 2, |s: &mut AnySim| s.set_threads(2)),
        ("par4", 4, |s: &mut AnySim| s.set_threads(4)),
        ("inplace", 1, |s: &mut AnySim| s.set_in_place_commit(true)),
        ("daemon", 1, |s: &mut AnySim| {
            s.set_in_place_commit(true);
            s.set_trusted_daemon(true);
            s.set_incremental_daemon(true);
        }),
        ("pool", 2, |s: &mut AnySim| {
            s.set_threads(2);
            s.set_in_place_commit(true);
            s.set_trusted_daemon(true);
            s.set_incremental_daemon(true);
        }),
        ("poolcommit", 2, |s: &mut AnySim| {
            s.set_threads(2);
            s.set_parallel_commit(true);
            s.set_in_place_commit(true);
            s.set_trusted_daemon(true);
            s.set_incremental_daemon(true);
        }),
    ]
}

/// Time `budget` steps of a fresh sim after `warmup` untimed steps (the
/// transient from the clean boot is not steady state), repeating `reps`
/// times and keeping the best wall-clock run.
fn measure(
    algo: AlgoKind,
    h: &Arc<sscc_hypergraph::Hypergraph>,
    configure: Configure,
    warmup: u64,
    budget: u64,
    reps: usize,
) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut steps_done = 0;
    for _ in 0..reps {
        let mut sim = build_sim(
            algo,
            Arc::clone(h),
            7,
            PolicyKind::Eager { max_disc: 1 },
            Boot::Clean,
        );
        configure(&mut sim);
        for _ in 0..warmup {
            if !sim.step() {
                break;
            }
        }
        let start = Instant::now();
        let mut done = 0;
        for _ in 0..budget {
            if !sim.step() {
                break;
            }
            done += 1;
        }
        let secs = start.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
            steps_done = done;
        }
    }
    (steps_done, best)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn record(out_path: &str, quick: bool) {
    // (ring size, timed budget): bigger rings get smaller budgets so the
    // full sweep stays a few minutes. The quick sweep's ring384 cell uses
    // the *same* warmup/budget protocol as the committed baseline, so the
    // CI gate's joined pairs measure identical windows of the trajectory.
    let sweep: &[(usize, u64)] = if quick {
        &[(96, 1000), (384, 3000)]
    } else {
        &[(384, 3000), (1536, 2400), (6144, 1000)]
    };
    let warmup = 400;
    let reps = 4;

    let mut records: Vec<Record> = Vec::new();
    for &(k, budget) in sweep {
        let h = Arc::new(generators::ring(k, 2));
        for algo in [AlgoKind::Cc1, AlgoKind::Cc2, AlgoKind::Cc3] {
            for (mode, threads, configure) in modes() {
                let (steps, secs) = measure(algo, &h, configure, warmup, budget, reps);
                eprintln!(
                    "{:>4} ring{k}x2 {:>12} x{threads}: {:>12.0} steps/s",
                    algo.label(),
                    mode,
                    steps as f64 / secs
                );
                records.push(Record {
                    algo: algo.label(),
                    topology: format!("ring{k}x2"),
                    n: h.n(),
                    mode,
                    threads,
                    steps,
                    secs,
                });
            }
        }
    }

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"engine_steps\",\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"warmup_steps\": {warmup},");
    let _ = writeln!(out, "  \"reps\": {reps},");
    let _ = writeln!(
        out,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(0, |p| p.get())
    );
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"algo\": \"{}\", \"topology\": \"{}\", \"n\": {}, \"mode\": \"{}\", \"threads\": {}, \"steps\": {}, \"secs\": {:.6}, \"steps_per_sec\": {:.1}}}",
            json_escape(r.algo),
            json_escape(&r.topology),
            r.n,
            r.mode,
            r.threads,
            r.steps,
            r.secs,
            r.steps_per_sec()
        );
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    // Speedup summary per (algo, topology): the headline numbers are the
    // new engine (parX) against the PR-1 sequential incremental baseline.
    out.push_str("  ],\n  \"speedups\": [\n");
    let mut lines = Vec::new();
    for &(k, _) in sweep {
        for algo in ["CC1", "CC2", "CC3"] {
            let topo = format!("ring{k}x2");
            let find = |mode: &str| {
                records
                    .iter()
                    .find(|r| r.algo == algo && r.topology == topo && r.mode == mode)
                    .map(Record::steps_per_sec)
                    .unwrap_or(f64::NAN)
            };
            let pr1 = find("incremental");
            let inplace = find("inplace");
            lines.push(format!(
                "    {{\"algo\": \"{algo}\", \"topology\": \"{topo}\", \
                 \"incremental_over_full_scan\": {:.2}, \
                 \"par1_over_sequential_incremental\": {:.2}, \
                 \"par2_over_sequential_incremental\": {:.2}, \
                 \"par4_over_sequential_incremental\": {:.2}, \
                 \"daemon_over_inplace\": {:.2}, \
                 \"pool_over_inplace\": {:.2}, \
                 \"poolcommit_over_inplace\": {:.2}}}",
                pr1 / find("full_scan"),
                find("par1") / pr1,
                find("par2") / pr1,
                find("par4") / pr1,
                find("daemon") / inplace,
                find("pool") / inplace,
                find("poolcommit") / inplace,
            ));
        }
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  ]\n}\n");

    std::fs::write(out_path, out).expect("write bench record");
    eprintln!("wrote {out_path}");
}

fn compare(baseline_path: &str, fresh_path: &str, threshold: f64) -> i32 {
    let baseline = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
    let fresh =
        std::fs::read_to_string(fresh_path).unwrap_or_else(|e| panic!("read {fresh_path}: {e}"));
    match bench_json::compare(&baseline, &fresh, threshold) {
        Ok(report) => {
            eprintln!(
                "compared {} (algo, topology, mode, threads) pairs against {baseline_path} \
                 (threshold -{:.0}%):",
                report.compared,
                threshold * 100.0
            );
            for line in &report.lines {
                eprintln!("  {line}");
            }
            if report.regressions.is_empty() {
                eprintln!("perf gate: OK");
                0
            } else {
                eprintln!(
                    "perf gate: {} steady-state throughput regression(s):",
                    report.regressions.len()
                );
                for line in &report.regressions {
                    eprintln!("  REGRESSED {line}");
                }
                1
            }
        }
        Err(e) => {
            eprintln!("perf gate: cannot compare: {e}");
            1
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--compare") {
        let baseline = args.get(1).expect("--compare BASELINE FRESH");
        let fresh = args.get(2).expect("--compare BASELINE FRESH");
        let threshold = match args.get(3).map(String::as_str) {
            Some("--threshold") => args
                .get(4)
                .and_then(|t| t.parse().ok())
                .expect("--threshold takes a fraction, e.g. 0.20"),
            None => 0.20,
            Some(other) => panic!("unknown argument {other}"),
        };
        std::process::exit(compare(baseline, fresh, threshold));
    }
    let quick = args.first().is_some_and(|a| a == "--quick");
    let rest = if quick { &args[1..] } else { &args[..] };
    let default = if quick {
        "bench_ci.json"
    } else {
        "BENCH_4.json"
    };
    let out_path = rest.first().cloned().unwrap_or_else(|| default.to_string());
    record(&out_path, quick);
}
