//! Records the open-loop serving trajectory — per-request sojourn
//! quantiles, convene throughput and queue depth for a
//! [`CoordinationService`](sscc_service::CoordinationService) under the
//! deterministic arrival processes — and gates CI against tail latency
//! regressions.
//!
//! ```sh
//! # Full trajectory recording (rings n=384/1536, every arrival process):
//! cargo run -p sscc-bench --release --bin bench_latency       # BENCH_latency.json
//! cargo run -p sscc-bench --release --bin bench_latency -- out.json
//!
//! # CI smoke (rings n=96/384; the ring384 cells use the same protocol as
//! # the committed baseline, so the gate joins on identical trajectories):
//! cargo run -p sscc-bench --release --bin bench_latency -- \
//!     --quick --modes par1,vl_daemon bench_latency_ci.json
//!
//! # Regression gate: exit 1 if any (algo, topology, mode, arrival) pair in
//! # FRESH has a p99 sojourn more than THRESHOLD (default 0.10) above
//! # BASELINE:
//! cargo run -p sscc-bench --release --bin bench_latency -- \
//!     --compare BENCH_latency.json bench_latency_ci.json --threshold 0.10
//! ```
//!
//! Everything the gate compares is measured in **service ticks** (one tick
//! = one poll/admit/step cycle), which are a pure function of the seed:
//! the same cell re-run on any host produces the same quantiles, so the
//! gate only ever trips on behavioral changes, never on CI-host noise.
//! Wall-clock throughput is recorded too, but as information, not gated.

use sscc_bench::bench_json;
use sscc_hypergraph::generators;
use sscc_service::{cc1_service, Arrivals, OverloadPolicy, ServiceConfig, TrafficGen};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// The arrival-process sweep for a topology of `n` professors. Rates scale
/// with `n` so every ring runs at a comparable per-professor load (~2% of
/// the professors request per tick; the burst peaks at 6%).
fn arrival_sweep(n: usize) -> Vec<(&'static str, Arrivals)> {
    let base = 0.02 * n as f64;
    vec![
        ("poisson", Arrivals::Poisson { rate: base }),
        (
            "bursty",
            Arrivals::Bursty {
                rate_on: 3.0 * base,
                rate_off: 0.1 * base,
                on_len: 200,
                off_len: 600,
            },
        ),
        (
            "hotspot",
            Arrivals::Hotspot {
                rate: base,
                hot_fraction: 0.8,
            },
        ),
    ]
}

struct Record {
    topology: String,
    n: usize,
    mode: String,
    arrival: &'static str,
    ticks: u64,
    accepted: u64,
    shed: u64,
    coalesced: u64,
    completed: u64,
    convenes: u64,
    p50: u64,
    p99: u64,
    p999: u64,
    mean: f64,
    max: u64,
    max_queue_depth: usize,
    mean_queue_depth: f64,
    secs: f64,
}

/// Run one cell: a fresh CC1 service on `h` under `arrivals` for `ticks`
/// service ticks, Shed overload (so the queue — and with it the sojourns —
/// stays bounded even if a cell is provisioned past saturation).
fn measure(
    h: &Arc<sscc_hypergraph::Hypergraph>,
    topology: &str,
    mode: &str,
    arrival: &'static str,
    arrivals: Arrivals,
    ticks: u64,
) -> Record {
    let seed = 7;
    let gen = TrafficGen::new(h, seed, arrivals, ticks);
    let cfg = ServiceConfig {
        queue_capacity: 4096,
        overload: OverloadPolicy::Shed,
        ..ServiceConfig::default()
    };
    let mut svc = cc1_service(Arc::clone(h), seed, 1, mode, Box::new(gen), cfg)
        .unwrap_or_else(|e| panic!("mode {mode} must validate: {e}"));
    let start = Instant::now();
    svc.run(ticks);
    let secs = start.elapsed().as_secs_f64();
    let stats = *svc.stats();
    let sum = svc
        .latency_summary()
        .unwrap_or_else(|| panic!("cell {topology}/{mode}/{arrival} completed no requests"));
    Record {
        topology: topology.to_string(),
        n: h.n(),
        mode: mode.to_string(),
        arrival,
        ticks,
        accepted: stats.accepted,
        shed: stats.shed,
        coalesced: stats.coalesced,
        completed: stats.completed,
        convenes: svc.sim().ledger().convened_count() as u64,
        p50: sum.p50,
        p99: sum.p99,
        p999: sum.p999,
        mean: sum.mean,
        max: sum.max,
        max_queue_depth: stats.max_queue_depth,
        mean_queue_depth: stats.queue_depth_sum as f64 / ticks as f64,
        secs,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn record(out_path: &str, quick: bool, modes: &[String]) {
    // (topology, service ticks): the ring384 cell is identical between the
    // quick and full sweeps so CI's quick run joins the committed baseline
    // on byte-identical trajectories. The tree/grid/power-law cells serve
    // the dynamic-topology families at the same scale; cells without a
    // committed baseline are skipped by the `--compare` join.
    type Cell = (String, Arc<sscc_hypergraph::Hypergraph>, u64);
    let cell = |label: &str, h: sscc_hypergraph::Hypergraph, ticks: u64| -> Cell {
        (label.to_string(), Arc::new(h), ticks)
    };
    let sweep: Vec<Cell> = if quick {
        vec![
            cell("ring96x2", generators::ring(96, 2), 4000),
            cell("ring384x2", generators::ring(384, 2), 6000),
            cell("tree384", generators::tree_pairs(384, 7), 4000),
            cell("grid16x24", generators::grid_pairs(16, 24), 4000),
            cell("powerlaw384", generators::power_law(384, 384, 7), 4000),
        ]
    } else {
        vec![
            cell("ring384x2", generators::ring(384, 2), 6000),
            cell("ring1536x2", generators::ring(1536, 2), 6000),
        ]
    };

    let mut records: Vec<Record> = Vec::new();
    for (topology, h, ticks) in &sweep {
        let ticks = *ticks;
        for mode in modes {
            for (arrival, arrivals) in arrival_sweep(h.n()) {
                let r = measure(h, topology, mode, arrival, arrivals, ticks);
                eprintln!(
                    " CC1 {topology} {mode:>10} {arrival:<8}: p50 {:>5} p99 {:>5} p99.9 {:>5} ticks, \
                     {} completed, {:>9.0} ticks/s",
                    r.p50,
                    r.p99,
                    r.p999,
                    r.completed,
                    r.ticks as f64 / r.secs
                );
                records.push(r);
            }
        }
    }

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"service_latency\",\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"algo\": \"CC1\",\n");
    out.push_str("  \"seed\": 7,\n");
    out.push_str("  \"max_disc\": 1,\n");
    out.push_str("  \"queue_capacity\": 4096,\n");
    out.push_str("  \"overload\": \"shed\",\n");
    let _ = writeln!(
        out,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(0, |p| p.get())
    );
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"algo\": \"CC1\", \"topology\": \"{}\", \"n\": {}, \"mode\": \"{}\", \
             \"arrival\": \"{}\", \"ticks\": {}, \"accepted\": {}, \"shed\": {}, \
             \"coalesced\": {}, \"completed\": {}, \"convenes\": {}, \
             \"p50_ticks\": {}, \"p99_ticks\": {}, \"p999_ticks\": {}, \
             \"mean_ticks\": {:.2}, \"max_ticks\": {}, \"max_queue_depth\": {}, \
             \"mean_queue_depth\": {:.2}, \"secs\": {:.6}, \"ticks_per_sec\": {:.1}}}",
            json_escape(&r.topology),
            r.n,
            json_escape(&r.mode),
            r.arrival,
            r.ticks,
            r.accepted,
            r.shed,
            r.coalesced,
            r.completed,
            r.convenes,
            r.p50,
            r.p99,
            r.p999,
            r.mean,
            r.max,
            r.max_queue_depth,
            r.mean_queue_depth,
            r.secs,
            r.ticks as f64 / r.secs,
        );
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");

    std::fs::write(out_path, out).expect("write latency record");
    eprintln!("wrote {out_path}");
}

fn compare(baseline_path: &str, fresh_path: &str, threshold: f64) -> i32 {
    let baseline = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
    let fresh =
        std::fs::read_to_string(fresh_path).unwrap_or_else(|e| panic!("read {fresh_path}: {e}"));
    match bench_json::compare_latency(&baseline, &fresh, threshold) {
        Ok(report) => {
            eprintln!(
                "compared {} (algo, topology, mode, arrival) pairs against {baseline_path} \
                 (threshold +{:.0}%):",
                report.compared,
                threshold * 100.0
            );
            for line in &report.lines {
                eprintln!("  {line}");
            }
            if report.regressions.is_empty() {
                eprintln!("latency gate: OK");
                0
            } else {
                eprintln!(
                    "latency gate: {} p99 sojourn regression(s):",
                    report.regressions.len()
                );
                for line in &report.regressions {
                    eprintln!("  REGRESSED {line}");
                }
                1
            }
        }
        Err(e) => {
            eprintln!("latency gate: cannot compare: {e}");
            1
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--compare") {
        let baseline = args.get(1).expect("--compare BASELINE FRESH");
        let fresh = args.get(2).expect("--compare BASELINE FRESH");
        let threshold = match args.get(3).map(String::as_str) {
            Some("--threshold") => args
                .get(4)
                .and_then(|t| t.parse().ok())
                .expect("--threshold takes a fraction, e.g. 0.10"),
            None => 0.10,
            Some(other) => panic!("unknown argument {other}"),
        };
        std::process::exit(compare(baseline, fresh, threshold));
    }
    let mut quick = false;
    // The default pair spans the engine's two serving configurations of
    // interest: the parallel workhorse and the incremental-daemon path.
    let mut modes: Vec<String> = vec!["par1".into(), "vl_daemon".into()];
    let mut out_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--modes" => {
                let spec = it.next().expect("--modes takes a,b,c");
                modes = spec.split(',').map(|s| s.trim().to_string()).collect();
            }
            flag if flag.starts_with("--") => panic!("unknown argument {flag}"),
            path => out_path = Some(path.to_string()),
        }
    }
    let default = if quick {
        "bench_latency_ci.json"
    } else {
        "BENCH_latency.json"
    };
    let out_path = out_path.unwrap_or_else(|| default.to_string());
    record(&out_path, quick, &modes);
}
