//! # sscc-bench
//!
//! Shared scenario definitions for the Criterion benches and the
//! `experiments` binary that regenerates every table in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p sscc-bench --release --bin experiments          # all tables
//! cargo run -p sscc-bench --release --bin experiments e5 e7    # a subset
//! cargo bench -p sscc-bench                                    # benches
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod bench_json;

use sscc_hypergraph::generators::{self, Named};
use sscc_hypergraph::Hypergraph;
use std::sync::Arc;

/// The bench corpus: small enough that every Criterion sample finishes
/// quickly, varied enough to exercise the interesting regimes.
pub fn bench_corpus() -> Vec<(String, Arc<Hypergraph>)> {
    generators::corpus()
        .into_iter()
        .map(|Named { name, h }| (name, Arc::new(h)))
        .collect()
}

/// Ring-of-pairs family used by the scaling benches (dining philosophers).
pub fn rings(sizes: &[usize]) -> Vec<(String, Arc<Hypergraph>)> {
    sizes
        .iter()
        .map(|&k| (format!("ring{k}x2"), Arc::new(generators::ring(k, 2))))
        .collect()
}

/// Steps a simulation a fixed number of times (bench routine body).
/// Returns the number of steps actually executed (stops early on
/// quiescence).
pub fn drive(sim: &mut sscc_metrics::AnySim, steps: u64) -> u64 {
    let mut done = 0;
    for _ in 0..steps {
        if !sim.step() {
            break;
        }
        done += 1;
    }
    done
}
