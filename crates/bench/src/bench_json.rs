//! Reading and regression-gating the `BENCH_*.json` trajectory records.
//!
//! The build environment has no crates.io access (no `serde`), and the
//! bench records are machine-written with a small fixed shape, so a ~100
//! line recursive-descent JSON reader is all the parsing this needs. The
//! interesting part is [`compare`]: the CI perf gate that diffs a fresh run
//! against the committed baseline and fails on steady-state throughput
//! regressions.

use std::collections::BTreeMap;

/// A parsed JSON value (just enough for the bench records).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always read as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion order is irrelevant to the gate).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            at: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.at != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.at));
        }
        Ok(v)
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.b.get(self.at).is_some_and(|c| c.is_ascii_whitespace()) {
            self.at += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.at) == Some(&c) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.at) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.b[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while self
            .b
            .get(self.at)
            .is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.at += 1;
        }
        std::str::from_utf8(&self.b[start..self.at])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.at) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = *self.b.get(self.at).ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            self.at += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let s = self
                        .b
                        .get(self.at..self.at + len)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or("bad utf-8 in string")?;
                    out.push_str(s);
                    self.at += len;
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.b.get(self.at) == Some(&b'}') {
            self.at += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            m.insert(k, self.value()?);
            self.ws();
            match self.b.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.b.get(self.at) == Some(&b']') {
            self.at += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.b.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }
}

/// One steady-state throughput record, keyed by
/// `(algo, topology, mode, threads)`.
#[derive(Clone, Debug, PartialEq)]
pub struct ThroughputRecord {
    /// Algorithm label (`CC1`/`CC2`/`CC3`).
    pub algo: String,
    /// Topology label (`ring384x2`, …).
    pub topology: String,
    /// Engine mode (`full_scan`, `incremental`, `par4`, …).
    pub mode: String,
    /// Drain worker threads.
    pub threads: u64,
    /// Steady-state steps per second.
    pub steps_per_sec: f64,
}

impl ThroughputRecord {
    fn key(&self) -> (String, String, String, u64) {
        (
            self.algo.clone(),
            self.topology.clone(),
            self.mode.clone(),
            self.threads,
        )
    }
}

/// Extract the `records` array of a `BENCH_*.json` document.
pub fn records_of(doc: &str) -> Result<Vec<ThroughputRecord>, String> {
    let root = Json::parse(doc)?;
    let records = root
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("no \"records\" array")?;
    records
        .iter()
        .map(|r| {
            Ok(ThroughputRecord {
                algo: r
                    .get("algo")
                    .and_then(Json::as_str)
                    .ok_or("record without algo")?
                    .to_string(),
                topology: r
                    .get("topology")
                    .and_then(Json::as_str)
                    .ok_or("record without topology")?
                    .to_string(),
                mode: r
                    .get("mode")
                    .and_then(Json::as_str)
                    .ok_or("record without mode")?
                    .to_string(),
                threads: r.get("threads").and_then(Json::as_num).unwrap_or(1.0) as u64,
                steps_per_sec: r
                    .get("steps_per_sec")
                    .and_then(Json::as_num)
                    .ok_or("record without steps_per_sec")?,
            })
        })
        .collect()
}

/// Outcome of a baseline/fresh comparison.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// One line per joined `(algo, topology, mode, threads)` pair.
    pub lines: Vec<String>,
    /// The pairs whose fresh throughput regressed beyond the threshold.
    pub regressions: Vec<String>,
    /// How many pairs were compared.
    pub compared: usize,
}

/// Diff `fresh` against `baseline`: every record sharing a
/// `(algo, topology, mode, threads)` key is compared, and a pair regresses
/// when the fresh steady-state steps/sec drops more than `threshold`
/// (e.g. `0.2` = 20%) below the baseline. An empty join is an error — a
/// gate that never compares anything would pass vacuously.
pub fn compare(baseline: &str, fresh: &str, threshold: f64) -> Result<CompareReport, String> {
    let base = records_of(baseline)?;
    let new = records_of(fresh)?;
    let index: BTreeMap<_, &ThroughputRecord> = base.iter().map(|r| (r.key(), r)).collect();
    let mut report = CompareReport::default();
    for r in &new {
        let Some(b) = index.get(&r.key()) else {
            continue;
        };
        report.compared += 1;
        let ratio = r.steps_per_sec / b.steps_per_sec;
        let line = format!(
            "{:>4} {:<10} {:<12} x{}: {:>12.0} -> {:>12.0} steps/s ({:+.1}%)",
            r.algo,
            r.topology,
            r.mode,
            r.threads,
            b.steps_per_sec,
            r.steps_per_sec,
            (ratio - 1.0) * 100.0
        );
        if ratio < 1.0 - threshold {
            report.regressions.push(line.clone());
        }
        report.lines.push(line);
    }
    if report.compared == 0 {
        return Err("no overlapping (algo, topology, mode, threads) records".into());
    }
    Ok(report)
}

/// One open-loop latency record, keyed by `(algo, topology, mode, arrival)`.
///
/// Sojourns are measured in **service ticks**, which are deterministic in
/// the seed — the p99 gate compares exact trajectories, not wall clock, so
/// it does not flake on loaded CI hosts.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyRecord {
    /// Algorithm label (`CC1`, …).
    pub algo: String,
    /// Topology label (`ring1536x2`, …).
    pub topology: String,
    /// Engine mode (`par1`, `vl_daemon`, …).
    pub mode: String,
    /// Arrival-process label (`poisson`, `bursty`, `hotspot`).
    pub arrival: String,
    /// Completed (timed) requests.
    pub completed: f64,
    /// 99th-percentile sojourn in ticks.
    pub p99_ticks: f64,
}

impl LatencyRecord {
    fn key(&self) -> (String, String, String, String) {
        (
            self.algo.clone(),
            self.topology.clone(),
            self.mode.clone(),
            self.arrival.clone(),
        )
    }
}

/// Extract the `records` array of a `BENCH_latency.json` document.
pub fn latency_records_of(doc: &str) -> Result<Vec<LatencyRecord>, String> {
    let root = Json::parse(doc)?;
    let records = root
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("no \"records\" array")?;
    records
        .iter()
        .map(|r| {
            let field = |k: &str| {
                r.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("record without {k}"))
            };
            Ok(LatencyRecord {
                algo: field("algo")?,
                topology: field("topology")?,
                mode: field("mode")?,
                arrival: field("arrival")?,
                completed: r
                    .get("completed")
                    .and_then(Json::as_num)
                    .ok_or("record without completed")?,
                p99_ticks: r
                    .get("p99_ticks")
                    .and_then(Json::as_num)
                    .ok_or("record without p99_ticks")?,
            })
        })
        .collect()
}

/// The latency gate: every record sharing an `(algo, topology, mode,
/// arrival)` key is compared, and a pair regresses when the fresh p99
/// sojourn rises more than `threshold` above the baseline (with one tick
/// of absolute slack so tiny-latency cells cannot regress on a ±1-tick
/// quantile wobble). Higher-is-worse, the mirror image of [`compare`];
/// an empty join is still an error.
pub fn compare_latency(
    baseline: &str,
    fresh: &str,
    threshold: f64,
) -> Result<CompareReport, String> {
    let base = latency_records_of(baseline)?;
    let new = latency_records_of(fresh)?;
    let index: BTreeMap<_, &LatencyRecord> = base.iter().map(|r| (r.key(), r)).collect();
    let mut report = CompareReport::default();
    for r in &new {
        let Some(b) = index.get(&r.key()) else {
            continue;
        };
        report.compared += 1;
        let ratio = r.p99_ticks / b.p99_ticks;
        let line = format!(
            "{:>4} {:<11} {:<10} {:<8}: p99 {:>7.0} -> {:>7.0} ticks ({:+.1}%), {} completed",
            r.algo,
            r.topology,
            r.mode,
            r.arrival,
            b.p99_ticks,
            r.p99_ticks,
            (ratio - 1.0) * 100.0,
            r.completed,
        );
        if ratio > 1.0 + threshold && r.p99_ticks > b.p99_ticks + 1.0 {
            report.regressions.push(line.clone());
        }
        report.lines.push(line);
    }
    if report.compared == 0 {
        return Err("no overlapping (algo, topology, mode, arrival) records".into());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &[(&str, &str, &str, u64, f64)]) -> String {
        let records: Vec<String> = rows
            .iter()
            .map(|(a, t, m, th, s)| {
                format!(
                    "{{\"algo\": \"{a}\", \"topology\": \"{t}\", \"mode\": \"{m}\", \
                     \"threads\": {th}, \"steps\": 100, \"steps_per_sec\": {s}}}"
                )
            })
            .collect();
        format!(
            "{{\"bench\": \"engine_steps\",\n \"records\": [{}]}}",
            records.join(",")
        )
    }

    #[test]
    fn parses_nested_values() {
        let v = Json::parse(r#"{"a": [1, -2.5e1, "x\ny"], "b": {"c": true}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_num(),
            Some(-25.0)
        );
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\ny")
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn extracts_records() {
        let d = doc(&[("CC2", "ring384x2", "par4", 4, 12345.6)]);
        let rs = records_of(&d).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].algo, "CC2");
        assert_eq!(rs[0].threads, 4);
        assert!((rs[0].steps_per_sec - 12345.6).abs() < 1e-9);
    }

    #[test]
    fn flags_regressions_beyond_threshold() {
        let base = doc(&[
            ("CC2", "ring384x2", "incremental", 1, 10_000.0),
            ("CC3", "ring384x2", "incremental", 1, 10_000.0),
        ]);
        let fresh = doc(&[
            ("CC2", "ring384x2", "incremental", 1, 9_000.0), // -10%: fine
            ("CC3", "ring384x2", "incremental", 1, 7_000.0), // -30%: regression
        ]);
        let rep = compare(&base, &fresh, 0.2).unwrap();
        assert_eq!(rep.compared, 2);
        assert_eq!(rep.regressions.len(), 1);
        assert!(rep.regressions[0].contains("CC3"));
    }

    #[test]
    fn ignores_unmatched_keys_but_rejects_empty_join() {
        let base = doc(&[("CC2", "ring6144x2", "par4", 4, 10_000.0)]);
        let fresh = doc(&[
            ("CC2", "ring6144x2", "par4", 4, 11_000.0),
            ("CC2", "ring96x2", "par4", 4, 1.0), // only in fresh: skipped
        ]);
        let rep = compare(&base, &fresh, 0.2).unwrap();
        assert_eq!(rep.compared, 1);
        assert!(rep.regressions.is_empty());
        let disjoint = doc(&[("CC1", "fig1", "full_scan", 1, 1.0)]);
        assert!(
            compare(&base, &disjoint, 0.2).is_err(),
            "vacuous gate is an error"
        );
    }

    fn lat_doc(rows: &[(&str, &str, &str, &str, f64)]) -> String {
        let records: Vec<String> = rows
            .iter()
            .map(|(a, t, m, arr, p99)| {
                format!(
                    "{{\"algo\": \"{a}\", \"topology\": \"{t}\", \"mode\": \"{m}\", \
                     \"arrival\": \"{arr}\", \"completed\": 500, \"p99_ticks\": {p99}}}"
                )
            })
            .collect();
        format!(
            "{{\"bench\": \"service_latency\",\n \"records\": [{}]}}",
            records.join(",")
        )
    }

    #[test]
    fn latency_gate_flags_higher_p99() {
        let base = lat_doc(&[
            ("CC1", "ring1536x2", "par1", "poisson", 100.0),
            ("CC1", "ring1536x2", "par1", "bursty", 100.0),
        ]);
        let fresh = lat_doc(&[
            ("CC1", "ring1536x2", "par1", "poisson", 105.0), // +5%: fine
            ("CC1", "ring1536x2", "par1", "bursty", 130.0),  // +30%: regression
        ]);
        let rep = compare_latency(&base, &fresh, 0.10).unwrap();
        assert_eq!(rep.compared, 2);
        assert_eq!(rep.regressions.len(), 1);
        assert!(rep.regressions[0].contains("bursty"));
    }

    #[test]
    fn latency_gate_lower_is_never_a_regression() {
        let base = lat_doc(&[("CC1", "ring1536x2", "vl_daemon", "hotspot", 200.0)]);
        let fresh = lat_doc(&[("CC1", "ring1536x2", "vl_daemon", "hotspot", 50.0)]);
        let rep = compare_latency(&base, &fresh, 0.10).unwrap();
        assert!(rep.regressions.is_empty());
        let disjoint = lat_doc(&[("CC1", "fig1", "par1", "poisson", 1.0)]);
        assert!(
            compare_latency(&base, &disjoint, 0.10).is_err(),
            "vacuous gate is an error"
        );
    }

    #[test]
    fn latency_gate_tick_slack_absorbs_quantile_wobble() {
        // 1 -> 2 ticks is +100% but within the one-tick absolute slack.
        let base = lat_doc(&[("CC1", "ring96x2", "par1", "poisson", 1.0)]);
        let fresh = lat_doc(&[("CC1", "ring96x2", "par1", "poisson", 2.0)]);
        let rep = compare_latency(&base, &fresh, 0.10).unwrap();
        assert!(rep.regressions.is_empty());
    }

    #[test]
    fn faster_is_never_a_regression() {
        let base = doc(&[("CC2", "ring384x2", "par2", 2, 10_000.0)]);
        let fresh = doc(&[("CC2", "ring384x2", "par2", 2, 30_000.0)]);
        let rep = compare(&base, &fresh, 0.2).unwrap();
        assert!(rep.regressions.is_empty());
    }
}
