//! E5/E6 — degree of fair concurrency measurement cost (one full frozen
//! meeting run to quiescence).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sscc_hypergraph::generators;
use sscc_metrics::{build_sim, AlgoKind, Boot, PolicyKind};
use std::sync::Arc;

fn degree_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("degree_quiescence");
    g.sample_size(10);
    let topologies = [
        ("fig2", Arc::new(generators::fig2())),
        ("ring6x2", Arc::new(generators::ring(6, 2))),
        ("path4x3", Arc::new(generators::path(4, 3))),
    ];
    for (name, h) in &topologies {
        for algo in [AlgoKind::Cc2, AlgoKind::Cc3] {
            g.bench_function(format!("{}/{name}", algo.label()), |b| {
                b.iter_batched(
                    || {
                        build_sim(
                            algo,
                            Arc::clone(h),
                            3,
                            PolicyKind::InfiniteMeetings,
                            Boot::Clean,
                        )
                    },
                    |mut sim| {
                        sim.run(60_000);
                        sim.live_meeting_count()
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(benches, degree_runs);
criterion_main!(benches);
