//! Analysis-side combinatorics: maximal-matching enumeration, `minMM`
//! branch and bound, and the full `AMM` fairness-set computation.

use criterion::{criterion_group, criterion_main, Criterion};
use sscc_hypergraph::{generators, matching, FairnessAnalysis};
use std::hint::black_box;

fn matching_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching");
    let topologies = [
        ("fig1", generators::fig1()),
        ("fig3", generators::fig3()),
        ("ring8x2", generators::ring(8, 2)),
        ("grid3x3", generators::grid_pairs(3, 3)),
    ];
    for (name, h) in &topologies {
        g.bench_function(format!("enumerate_mm/{name}"), |b| {
            b.iter(|| black_box(matching::enumerate_maximal_matchings(h).len()))
        });
        g.bench_function(format!("min_mm/{name}"), |b| {
            b.iter(|| black_box(matching::min_maximal_matching_size(h)))
        });
        g.bench_function(format!("sampled_min/{name}"), |b| {
            b.iter(|| black_box(matching::sampled_min_maximal(h, 64, 3)))
        });
    }
    for (name, h) in [("fig2", generators::fig2()), ("fig1", generators::fig1())] {
        g.bench_function(format!("fairness_analysis/{name}"), |b| {
            b.iter(|| black_box(FairnessAnalysis::compute(&h)))
        });
    }
    g.finish();
}

criterion_group!(benches, matching_ops);
criterion_main!(benches);
