//! E11 — steady-state meeting throughput per algorithm and topology.

use criterion::{criterion_group, criterion_main, Criterion};
use sscc_metrics::{measure_throughput, AlgoKind, PolicyKind};
use std::hint::black_box;

fn throughput_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("throughput_10k_steps");
    g.sample_size(10);
    for (name, h) in sscc_bench::bench_corpus() {
        // Keep the bench matrix small: the three figures + the dining ring.
        if !matches!(name.as_str(), "fig1" | "fig2" | "ring6x2") {
            continue;
        }
        for algo in [AlgoKind::Cc1, AlgoKind::Cc2, AlgoKind::Cc3] {
            g.bench_function(format!("{}/{name}", algo.label()), |b| {
                b.iter(|| {
                    black_box(measure_throughput(
                        &h,
                        algo,
                        9,
                        PolicyKind::Eager { max_disc: 2 },
                        10_000,
                    ))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, throughput_runs);
criterion_main!(benches);
