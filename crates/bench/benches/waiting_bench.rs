//! E7 — waiting-time measurement (Theorem 6 shape): one CC2 run per ring
//! size with the waiting statistics extracted.

use criterion::{criterion_group, criterion_main, Criterion};
use sscc_hypergraph::generators;
use sscc_metrics::{measure_waiting, AlgoKind};
use std::hint::black_box;
use std::sync::Arc;

fn waiting_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("waiting_cc2");
    g.sample_size(10);
    for k in [4usize, 8, 12] {
        let h = Arc::new(generators::ring(k, 2));
        g.bench_function(format!("ring{k}x2"), |b| {
            b.iter(|| black_box(measure_waiting(&h, AlgoKind::Cc2, 5, 2, 20_000)))
        });
    }
    g.finish();
}

criterion_group!(benches, waiting_runs);
criterion_main!(benches);
