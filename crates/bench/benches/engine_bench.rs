//! Engine throughput: composed guard evaluation + atomic step rate for each
//! algorithm as the system grows (rings of pair committees).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sscc_bench::{drive, rings};
use sscc_metrics::{build_sim, AlgoKind, Boot, PolicyKind};
use std::sync::Arc;

fn engine_steps(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_steps_200");
    g.sample_size(10);
    for (name, h) in rings(&[6, 12, 24]) {
        for algo in [AlgoKind::Cc1, AlgoKind::Cc2, AlgoKind::Cc3] {
            g.bench_function(format!("{}/{name}", algo.label()), |b| {
                b.iter_batched(
                    || {
                        build_sim(
                            algo,
                            Arc::clone(&h),
                            7,
                            PolicyKind::Eager { max_disc: 1 },
                            Boot::Clean,
                        )
                    },
                    |mut sim| drive(&mut sim, 200),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(benches, engine_steps);
criterion_main!(benches);
