//! Engine throughput: composed guard evaluation + atomic step rate for each
//! algorithm as the system grows (rings of pair committees), comparing the
//! incremental dirty-set scheduler against the legacy full-scan engine
//! (differentially tested to be bit-identical).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sscc_bench::{drive, rings};
use sscc_metrics::{build_sim, AlgoKind, Boot, EngineConfig, ModeRegistry, PolicyKind};
use std::sync::Arc;

fn engine_steps(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_steps_200");
    g.sample_size(10);
    for (name, h) in rings(&[6, 12, 24]) {
        for algo in [AlgoKind::Cc1, AlgoKind::Cc2, AlgoKind::Cc3] {
            g.bench_function(format!("{}/{name}", algo.label()), |b| {
                b.iter_batched(
                    || {
                        build_sim(
                            algo,
                            Arc::clone(&h),
                            7,
                            PolicyKind::Eager { max_disc: 1 },
                            Boot::Clean,
                        )
                    },
                    |mut sim| drive(&mut sim, 200),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

/// Scaling comparison on large rings: full-scan vs incremental engine,
/// n ∈ {24, 96, 384}. This is the acceptance benchmark of the incremental
/// scheduler (≥ 3× steps/sec on the n=384 ring).
fn engine_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_scaling_200");
    g.sample_size(10);
    for (name, h) in rings(&[24, 96, 384]) {
        for algo in [AlgoKind::Cc1, AlgoKind::Cc2, AlgoKind::Cc3] {
            for (mode, cfg) in [
                ("incremental", EngineConfig::default()),
                ("full-scan", EngineConfig::full_scan()),
            ] {
                g.bench_function(format!("{}/{name}/{mode}", algo.label()), |b| {
                    b.iter_batched(
                        || {
                            let mut sim = build_sim(
                                algo,
                                Arc::clone(&h),
                                7,
                                PolicyKind::Eager { max_disc: 1 },
                                Boot::Clean,
                            );
                            sim.configure(&cfg).unwrap();
                            sim
                        },
                        |mut sim| drive(&mut sim, 200),
                        BatchSize::SmallInput,
                    )
                });
            }
        }
    }
    g.finish();
}

/// Thread-count sweep on large rings: the PR-1 sequential incremental
/// baseline against this PR's engine (fused evaluators + delta-aware
/// policies) at 1, 2 and 4 drain workers, n ∈ {384, 1536, 6144}. Shorter
/// step budget — at these sizes the per-step cost is what matters.
fn engine_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_parallel_100");
    g.sample_size(10);
    for (name, h) in rings(&[384, 1536, 6144]) {
        for algo in [AlgoKind::Cc1, AlgoKind::Cc2, AlgoKind::Cc3] {
            // Configurations come from the shared registry — this bench
            // sweeps the sequential-vs-pooled drain subset of it.
            for mode in ["incremental", "par1", "par2", "par4"] {
                let cfg = ModeRegistry::get(mode).expect("registry mode").config;
                g.bench_function(format!("{}/{name}/{mode}", algo.label()), |b| {
                    b.iter_batched(
                        || {
                            let mut sim = build_sim(
                                algo,
                                Arc::clone(&h),
                                7,
                                PolicyKind::Eager { max_disc: 1 },
                                Boot::Clean,
                            );
                            sim.configure(&cfg).unwrap();
                            // Reach steady state before timing.
                            drive(&mut sim, 100);
                            sim
                        },
                        |mut sim| drive(&mut sim, 100),
                        BatchSize::SmallInput,
                    )
                });
            }
        }
    }
    g.finish();
}

criterion_group!(benches, engine_steps, engine_scaling, engine_parallel);
criterion_main!(benches);
