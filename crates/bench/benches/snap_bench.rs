//! E9 — snap-stabilization: time from an arbitrary configuration to the
//! first *correct* post-fault meeting (which, being snap, is simply the
//! first post-fault meeting).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sscc_hypergraph::generators;
use sscc_metrics::{build_sim, AlgoKind, AnySim, Boot, PolicyKind};
use std::sync::Arc;

fn first_meeting_after_fault(sim: &mut AnySim, budget: u64) -> u64 {
    for _ in 0..budget {
        if sim.ledger().convened_count() > 0 {
            assert!(sim.monitor().clean(), "snap violated");
            return sim.steps();
        }
        if !sim.step() {
            break;
        }
    }
    panic!("no meeting within budget");
}

fn snap_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("snap_first_meeting");
    g.sample_size(10);
    let topologies = [
        ("fig1", Arc::new(generators::fig1())),
        ("ring6x2", Arc::new(generators::ring(6, 2))),
    ];
    for (name, h) in &topologies {
        for algo in [AlgoKind::Cc1, AlgoKind::Cc2] {
            g.bench_function(format!("{}/{name}", algo.label()), |b| {
                let mut fault = 0u64;
                b.iter_batched(
                    || {
                        fault += 1;
                        build_sim(
                            algo,
                            Arc::clone(h),
                            fault,
                            PolicyKind::Eager { max_disc: 1 },
                            Boot::Arbitrary(fault),
                        )
                    },
                    |mut sim| first_meeting_after_fault(&mut sim, 50_000),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(benches, snap_recovery);
criterion_main!(benches);
