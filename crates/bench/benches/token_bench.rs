//! E10 — token substrate: stabilization cost of the Dijkstra-tour ring and
//! the leader election from arbitrary states.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sscc_hypergraph::generators;
use sscc_runtime::prelude::*;
use sscc_token::{LeaderElect, TokenRing};
use std::sync::Arc;

fn token_stabilization(c: &mut Criterion) {
    let mut g = c.benchmark_group("token_stabilize");
    g.sample_size(10);
    for k in [6usize, 12, 24] {
        let h = Arc::new(generators::ring(k, 2));
        g.bench_function(format!("dijkstra_ring{k}"), |b| {
            b.iter_batched(
                || {
                    let mut w = World::new(Arc::clone(&h), TokenRing::new(&h));
                    strike(&mut w, 42);
                    w
                },
                |mut w| {
                    let ring = TokenRing::new(&h);
                    let mut d = Synchronous;
                    let mut steps = 0u64;
                    while ring.privileged_position_count(&h, w.states()) > 1 {
                        w.step(&mut d, &());
                        steps += 1;
                        assert!(steps < 1_000_000, "did not stabilize");
                    }
                    steps
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn leader_election(c: &mut Criterion) {
    let mut g = c.benchmark_group("leader_elect");
    g.sample_size(10);
    for k in [6usize, 12, 24] {
        let h = Arc::new(generators::ring(k, 2));
        g.bench_function(format!("minid_ring{k}"), |b| {
            b.iter_batched(
                || {
                    let mut w = World::new(Arc::clone(&h), LeaderElect);
                    strike(&mut w, 42);
                    w
                },
                |mut w| w.run_to_quiescence(&mut Synchronous, &(), 1_000_000),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, token_stabilization, leader_election);
criterion_main!(benches);
