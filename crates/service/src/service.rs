//! The [`CoordinationService`]: admission, backpressure, latency.
//!
//! One service tick is: **ingest** (poll the transport into the bounded
//! admission queue) → **admit** (fold eligible requests into the engine's
//! [`RequestFlags`](sscc_core::RequestFlags) as `RequestIn` flips — the incremental engine turns
//! each into an `O(footprint)` `invalidate_env_of`, not a rescan) →
//! **step** the simulation → **complete** (match the step's
//! [`LedgerEvent::Convened`] events back to in-flight requests and record
//! their sojourns).
//!
//! Latency measurement points (all in ticks — one tick, one step attempt):
//!
//! ```text
//!  arrival ──▶ [admission queue] ──▶ RequestIn(p) set ──▶ ... ──▶ convene
//!     │                │                   │                        │
//!     └── sojourn ─────┼───────────────────┼────────────────────────┘
//!                      └── queue wait ─────┘
//! ```
//!
//! The simulation **must** run an [`OpenLoopPolicy`] (the convenience
//! constructors do): every other shipped policy re-derives `RequestIn`
//! each tick and would overwrite the admissions after one step.

use crate::source::{CoordRequest, RequestSource};
use rand::rngs::StdRng;
use rand::SeedableRng as _;
use sscc_core::algo::CommitteeAlgorithm;
use sscc_core::sim::Sim;
use sscc_core::status::{CommitteeView, Status};
use sscc_core::{splitmix64, ConfigError, LedgerEvent, OpenLoopPolicy};
use sscc_hypergraph::{random_mutation_with_bias, Hypergraph, MutationBias};
use sscc_metrics::LatencyHistogram;
use sscc_runtime::wire::{self, Reader, StateCodec};
use sscc_token::TokenLayer;
use std::collections::VecDeque;
use std::sync::Arc;

/// What to do when arrivals outrun the admission queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Stop polling the transport while the queue is full: requests back up
    /// in the transport (a bounded channel then pushes back on clients —
    /// the lossless choice, and the default).
    #[default]
    Defer,
    /// Keep polling and drop what does not fit, counting each drop in
    /// [`ServiceStats::shed`] (the bounded-latency choice).
    Shed,
}

/// Magic prefix of a [`CoordinationService::checkpoint`] blob.
pub const SERVICE_MAGIC: [u8; 8] = *b"SSCCSRV\0";

/// Layout version of the service checkpoint blob. Bump on change; restore
/// rejects versions it does not understand.
pub const SERVICE_CHECKPOINT_VERSION: u16 = 1;

/// Scheduled topology churn: every `period` ticks the service proposes one
/// seeded pseudo-random [`WorldMutation`](sscc_hypergraph::WorldMutation)
/// against its own world (the "members come and go while requests are in
/// flight" regime). Proposals the graph rejects (isolation, disconnection,
/// duplicates) are counted and skipped — the structural invariants hold by
/// construction.
///
/// The proposal stream is **counter-based**: mutation `k` is drawn from a
/// fresh rng seeded by `(seed, k)`, never from a long-lived rng. Same
/// config, same world evolution → same proposals, regardless of when stats
/// are read or checkpoints are taken — and a restored service continues
/// the exact stream from its persisted counter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnConfig {
    /// Ticks between proposals (≥ 1).
    pub period: u64,
    /// Seed of the proposal stream.
    pub seed: u64,
    /// Structural regime restriction.
    pub bias: MutationBias,
}

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Bounded admission-queue capacity.
    pub queue_capacity: usize,
    /// Max admissions folded into the engine per tick (batching bound).
    pub admit_batch: usize,
    /// Overload behavior when the queue is full.
    pub overload: OverloadPolicy,
    /// Record every admission as a `(tick, professor)` pair (replay /
    /// equivalence testing; off by default — it grows with the run).
    pub record_admissions: bool,
    /// Scheduled topology churn (off by default).
    pub churn: Option<ChurnConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 1024,
            admit_batch: usize::MAX,
            overload: OverloadPolicy::Defer,
            record_admissions: false,
            churn: None,
        }
    }
}

/// Cumulative service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted into the admission queue.
    pub accepted: u64,
    /// Requests dropped by [`OverloadPolicy::Shed`].
    pub shed: u64,
    /// Requests merged into an already-in-flight request for the same
    /// professor (served by the same convene; only the first is timed).
    pub coalesced: u64,
    /// In-flight requests served by a convene event.
    pub completed: u64,
    /// Convene participations with no in-flight request behind them
    /// (arbitrary-boot debris; zero on a clean boot under open-loop load).
    pub unsolicited: u64,
    /// Largest admission-queue depth observed at a tick boundary.
    pub max_queue_depth: usize,
    /// Sum of per-tick queue depths (mean = `sum / ticks`).
    pub queue_depth_sum: u64,
    /// Churn proposals the graph accepted.
    pub churn_applied: u64,
    /// Churn proposals the graph rejected (invariant-preserving skips).
    pub churn_rejected: u64,
}

/// Sojourn-distribution summary (units: service ticks).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Median sojourn.
    pub p50: u64,
    /// 99th-percentile sojourn.
    pub p99: u64,
    /// 99.9th-percentile sojourn.
    pub p999: u64,
    /// Mean sojourn.
    pub mean: f64,
    /// Largest sojourn.
    pub max: u64,
    /// Number of completed (timed) requests.
    pub completed: u64,
}

/// A queued request.
#[derive(Clone, Copy, Debug)]
struct Pending {
    professor: usize,
    arrived: u64,
}

/// An admitted request awaiting its convene.
#[derive(Clone, Copy, Debug)]
struct InFlight {
    arrived: u64,
}

/// The proxy front-end: owns the [`Sim`] and the transport, mediates every
/// external interaction (see the module docs for the tick pipeline).
pub struct CoordinationService<C: CommitteeAlgorithm, TL: TokenLayer> {
    sim: Sim<C, TL>,
    source: Box<dyn RequestSource>,
    cfg: ServiceConfig,
    queue: VecDeque<Pending>,
    /// Per-professor admitted-but-not-yet-convened request.
    in_flight: Vec<Option<InFlight>>,
    in_flight_count: usize,
    now: u64,
    stats: ServiceStats,
    latency: LatencyHistogram,
    queue_wait: LatencyHistogram,
    poll_buf: Vec<CoordRequest>,
    admissions: Vec<(u64, usize)>,
    /// Churn proposals drawn so far (the counter of the proposal stream).
    churn_events: u64,
}

impl<C: CommitteeAlgorithm, TL: TokenLayer> CoordinationService<C, TL> {
    /// Wrap a simulation. The sim must have been built with an
    /// [`OpenLoopPolicy`] (see the module docs); use [`cc1_service`] for
    /// the common case.
    pub fn new(sim: Sim<C, TL>, source: Box<dyn RequestSource>, cfg: ServiceConfig) -> Self {
        assert!(cfg.queue_capacity > 0, "zero-capacity admission queue");
        assert!(cfg.admit_batch > 0, "zero admission batch");
        let n = sim.h().n();
        CoordinationService {
            sim,
            source,
            cfg,
            queue: VecDeque::new(),
            in_flight: vec![None; n],
            in_flight_count: 0,
            now: 0,
            stats: ServiceStats::default(),
            latency: LatencyHistogram::new(),
            queue_wait: LatencyHistogram::new(),
            poll_buf: Vec::new(),
            admissions: Vec::new(),
            churn_events: 0,
        }
    }

    /// One service tick: ingest → admit → step → complete. Returns whether
    /// the simulation made progress (`false` = stably terminal *and* no
    /// admission re-enabled it this tick; new arrivals can revive it).
    pub fn tick(&mut self) -> bool {
        self.now += 1;

        // Churn: scheduled topology mutation, before ingest so arrivals of
        // this tick already see the mutated world.
        if let Some(churn) = self.cfg.churn {
            if churn.period > 0 && self.now.is_multiple_of(churn.period) {
                let k = self.churn_events;
                self.churn_events += 1;
                let mut rng = StdRng::seed_from_u64(splitmix64(
                    churn.seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ));
                let mu = random_mutation_with_bias(self.sim.h(), &mut rng, churn.bias);
                match self.sim.mutate(&mu) {
                    Ok(_) => self.stats.churn_applied += 1,
                    Err(_) => self.stats.churn_rejected += 1,
                }
            }
        }

        // Ingest: poll the transport into the bounded queue.
        let space = self.cfg.queue_capacity - self.queue.len();
        let budget = match self.cfg.overload {
            OverloadPolicy::Defer => space,
            OverloadPolicy::Shed => usize::MAX,
        };
        if budget > 0 {
            self.poll_buf.clear();
            self.source.poll(self.now, budget, &mut self.poll_buf);
            for r in self.poll_buf.drain(..) {
                debug_assert!(r.professor < self.in_flight.len(), "unknown professor");
                if self.queue.len() < self.cfg.queue_capacity {
                    self.queue.push_back(Pending {
                        professor: r.professor,
                        arrived: self.now,
                    });
                    self.stats.accepted += 1;
                } else {
                    self.stats.shed += 1;
                }
            }
        }
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
        self.stats.queue_depth_sum += self.queue.len() as u64;

        // Admit: one rotation over the queue, folding eligible requests
        // into the environment. Eligible = professor idle (CC1 consumes
        // `RequestIn` only from `idle`; a flip for a busy professor would
        // be cleared unconsumed by the next policy tick) and not already
        // in flight. FIFO order is preserved among the survivors.
        let mut admitted = 0usize;
        for _ in 0..self.queue.len() {
            let pend = self.queue.pop_front().expect("sized loop");
            let p = pend.professor;
            if self.in_flight[p].is_some() {
                self.stats.coalesced += 1;
                continue;
            }
            if admitted < self.cfg.admit_batch
                && self.sim.world().state(p).cc.status() == Status::Idle
            {
                self.sim.flags_mut().set_in(p, true);
                self.in_flight[p] = Some(InFlight {
                    arrived: pend.arrived,
                });
                self.in_flight_count += 1;
                self.queue_wait.record(self.now - pend.arrived);
                if self.cfg.record_admissions {
                    self.admissions.push((self.now, p));
                }
                admitted += 1;
            } else {
                self.queue.push_back(pend);
            }
        }

        // Step: the admissions drain into `invalidate_env_of` at step
        // start, so the engine sees them in this very step.
        let progressed = self.sim.step();

        // Complete: convene events serve their participants' requests.
        for ev in self.sim.last_events() {
            if let LedgerEvent::Convened(idx) = *ev {
                let inst = &self.sim.ledger().instances()[idx];
                for &p in &inst.participants {
                    match self.in_flight[p].take() {
                        Some(fl) => {
                            self.in_flight_count -= 1;
                            self.latency.record(self.now - fl.arrived);
                            self.stats.completed += 1;
                        }
                        None => self.stats.unsolicited += 1,
                    }
                }
            }
        }
        progressed
    }

    /// Run `ticks` service ticks.
    pub fn run(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.tick();
        }
    }

    /// Run until the transport is finished and every accepted request has
    /// been served (or `max_ticks` elapse). Returns `true` when fully
    /// drained.
    pub fn run_until_drained(&mut self, max_ticks: u64) -> bool {
        for _ in 0..max_ticks {
            if self.drained() {
                return true;
            }
            self.tick();
        }
        self.drained()
    }

    /// Transport finished, queue empty, nothing in flight.
    pub fn drained(&self) -> bool {
        self.source.finished() && self.queue.is_empty() && self.in_flight_count == 0
    }

    /// Service ticks elapsed.
    pub fn ticks(&self) -> u64 {
        self.now
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Admitted requests not yet served.
    pub fn in_flight(&self) -> usize {
        self.in_flight_count
    }

    /// The owned simulation (read-only: the service mediates mutation).
    pub fn sim(&self) -> &Sim<C, TL> {
        &self.sim
    }

    /// Inject a seeded transient fault into `fraction` of the processes of
    /// the running service — the campaign seam. Forwards to `Sim::strike`
    /// (observers repaired, not reset: latency history and meeting records
    /// span the disruption), then re-arms the `RequestIn` flag of every
    /// in-flight professor the fault left idle: the admitted request is
    /// still owed a convene, but the flag that carried it into the engine
    /// may have been consumed or scrambled. Returns the struck processes.
    ///
    /// # Errors
    /// A distributed sim fails closed — see `Sim::strike`.
    pub fn inject_fault(
        &mut self,
        seed: u64,
        fraction: f64,
    ) -> Result<Vec<usize>, sscc_core::ConfigError> {
        let struck = self.sim.strike(seed, fraction)?;
        for p in 0..self.in_flight.len() {
            if self.in_flight[p].is_some() && self.sim.world().state(p).cc.status() == Status::Idle
            {
                self.sim.flags_mut().set_in(p, true);
            }
        }
        Ok(struck)
    }

    /// Apply a topology mutation to the running service — forwards to
    /// `Sim::mutate` (incremental index/observer repair). The process set
    /// is fixed under mutation, so admission bookkeeping survives as-is.
    ///
    /// # Errors
    /// Anything `Hypergraph::apply_mutation` rejects; the service is
    /// untouched on error.
    pub fn apply_mutation(
        &mut self,
        mutation: &sscc_hypergraph::WorldMutation,
    ) -> Result<sscc_hypergraph::MutationDelta, sscc_hypergraph::MutationError> {
        self.sim.mutate(mutation)
    }

    /// Summarize the sojourn distribution (`None` before any completion).
    /// Read-only: finalization happens on a snapshot of the histogram, so
    /// stats can be exported from a running (or checkpointed) service.
    pub fn latency_summary(&self) -> Option<LatencySummary> {
        let snap = self.latency.snapshot();
        if snap.is_empty() {
            return None;
        }
        Some(LatencySummary {
            p50: snap.quantile(0.50)?,
            p99: snap.quantile(0.99)?,
            p999: snap.quantile(0.999)?,
            mean: snap.mean(),
            max: snap.max()?,
            completed: self.stats.completed,
        })
    }

    /// Queue-wait (arrival → admission) distribution.
    pub fn queue_wait(&self) -> &LatencyHistogram {
        &self.queue_wait
    }

    /// Summarize the queue-wait distribution (`None` before any admission).
    pub fn queue_wait_summary(&self) -> Option<LatencySummary> {
        let snap = self.queue_wait.snapshot();
        if snap.is_empty() {
            return None;
        }
        Some(LatencySummary {
            p50: snap.quantile(0.50)?,
            p99: snap.quantile(0.99)?,
            p999: snap.quantile(0.999)?,
            mean: snap.mean(),
            max: snap.max()?,
            completed: snap.len() as u64,
        })
    }

    /// The admission log (`(tick, professor)` pairs), populated when
    /// [`ServiceConfig::record_admissions`] is on — the replay surface the
    /// scripted-equivalence tests drive.
    pub fn admissions(&self) -> &[(u64, usize)] {
        &self.admissions
    }

    /// Freeze the whole service — engine, topology, admission queue,
    /// in-flight table, stats, latency samples, churn counter and the
    /// transport — into one versioned, checksummed blob. A service
    /// restored from it ([`CoordinationService::restore_with`]) continues
    /// **bit-identically**: same admissions, same convenes, same latency
    /// samples as the uninterrupted original.
    ///
    /// `None` when any layer refuses to persist: a custom daemon/policy
    /// without codec support, or a live transport (e.g.
    /// [`ChannelSource`](crate::ChannelSource)) — the deterministic
    /// [`TrafficGen`](crate::TrafficGen) persists fine.
    pub fn checkpoint(&self) -> Option<Vec<u8>>
    where
        C::State: StateCodec,
        TL::State: StateCodec,
    {
        let mut source_blob = Vec::new();
        if !self.source.save_state(&mut source_blob) {
            return None;
        }
        let mut sim_blob = Vec::new();
        if !self.sim.save_state(&mut sim_blob) {
            return None;
        }
        let mut p = Vec::new();
        let mut topo = Vec::new();
        sscc_persist::encode_topology(self.sim.h(), &mut topo);
        wire::put_bytes(&mut p, &topo);
        wire::put_bytes(&mut p, &sim_blob);
        // Config.
        wire::put_usize(&mut p, self.cfg.queue_capacity);
        wire::put_usize(&mut p, self.cfg.admit_batch);
        wire::put_u8(
            &mut p,
            match self.cfg.overload {
                OverloadPolicy::Defer => 0,
                OverloadPolicy::Shed => 1,
            },
        );
        wire::put_bool(&mut p, self.cfg.record_admissions);
        match self.cfg.churn {
            None => wire::put_bool(&mut p, false),
            Some(ch) => {
                wire::put_bool(&mut p, true);
                wire::put_u64(&mut p, ch.period);
                wire::put_u64(&mut p, ch.seed);
                wire::put_u8(
                    &mut p,
                    match ch.bias {
                        MutationBias::Balanced => 0,
                        MutationBias::GrowOnly => 1,
                        MutationBias::ShrinkOnly => 2,
                    },
                );
            }
        }
        // Queue and in-flight table.
        wire::put_usize(&mut p, self.queue.len());
        for pend in &self.queue {
            wire::put_usize(&mut p, pend.professor);
            wire::put_u64(&mut p, pend.arrived);
        }
        wire::put_usize(&mut p, self.in_flight.len());
        for fl in &self.in_flight {
            match fl {
                None => wire::put_bool(&mut p, false),
                Some(f) => {
                    wire::put_bool(&mut p, true);
                    wire::put_u64(&mut p, f.arrived);
                }
            }
        }
        wire::put_u64(&mut p, self.now);
        // Stats.
        wire::put_u64(&mut p, self.stats.accepted);
        wire::put_u64(&mut p, self.stats.shed);
        wire::put_u64(&mut p, self.stats.coalesced);
        wire::put_u64(&mut p, self.stats.completed);
        wire::put_u64(&mut p, self.stats.unsolicited);
        wire::put_usize(&mut p, self.stats.max_queue_depth);
        wire::put_u64(&mut p, self.stats.queue_depth_sum);
        wire::put_u64(&mut p, self.stats.churn_applied);
        wire::put_u64(&mut p, self.stats.churn_rejected);
        // Histograms (raw samples — summaries are derived on demand).
        wire::put_u64_slice(&mut p, self.latency.samples());
        wire::put_u64_slice(&mut p, self.queue_wait.samples());
        // Admission log.
        wire::put_usize(&mut p, self.admissions.len());
        for &(t, pr) in &self.admissions {
            wire::put_u64(&mut p, t);
            wire::put_usize(&mut p, pr);
        }
        wire::put_u64(&mut p, self.churn_events);
        wire::put_bytes(&mut p, &source_blob);

        let mut out = Vec::with_capacity(p.len() + 18);
        out.extend_from_slice(&SERVICE_MAGIC);
        wire::put_u16(&mut out, SERVICE_CHECKPOINT_VERSION);
        wire::put_u64(&mut out, sscc_persist::fnv1a64(&p));
        out.extend_from_slice(&p);
        Some(out)
    }

    /// Thaw a [`CoordinationService::checkpoint`] blob. The topology
    /// travels inside the blob (post-mutation, exact dense indices);
    /// `make_cc`/`make_tl` build fresh algorithm instances over it, and
    /// `source` must be a freshly constructed transport of the same
    /// configuration as the original (its mutable state is restored from
    /// the blob through [`RequestSource::restore_state`]).
    ///
    /// `None` on truncation, corruption, checksum or version mismatch, or
    /// a transport that refuses the embedded state.
    pub fn restore_with(
        make_cc: impl FnOnce(&Hypergraph) -> C,
        make_tl: impl FnOnce(&Hypergraph) -> TL,
        mut source: Box<dyn RequestSource>,
        bytes: &[u8],
    ) -> Option<Self>
    where
        C: 'static,
        TL: 'static,
        C::State: Copy + StateCodec,
        TL::State: Copy + StateCodec,
    {
        let mut r = Reader::new(bytes);
        if r.take(SERVICE_MAGIC.len())? != SERVICE_MAGIC {
            return None;
        }
        if r.u16()? != SERVICE_CHECKPOINT_VERSION {
            return None;
        }
        let checksum = r.u64()?;
        let payload = r.take(r.remaining())?;
        if sscc_persist::fnv1a64(payload) != checksum {
            return None;
        }
        let mut r = Reader::new(payload);
        let mut topo = Reader::new(r.bytes()?);
        let h = Arc::new(sscc_persist::decode_topology(&mut topo)?);
        if !topo.is_empty() {
            return None;
        }
        let n = h.n();
        let cc = make_cc(&h);
        let tl = make_tl(&h);
        let sim = Sim::restore(Arc::clone(&h), cc, tl, r.bytes()?)?;
        let queue_capacity = r.usize()?;
        let admit_batch = r.usize()?;
        let overload = match r.u8()? {
            0 => OverloadPolicy::Defer,
            1 => OverloadPolicy::Shed,
            _ => return None,
        };
        let record_admissions = r.bool()?;
        let churn = if r.bool()? {
            Some(ChurnConfig {
                period: r.u64()?,
                seed: r.u64()?,
                bias: match r.u8()? {
                    0 => MutationBias::Balanced,
                    1 => MutationBias::GrowOnly,
                    2 => MutationBias::ShrinkOnly,
                    _ => return None,
                },
            })
        } else {
            None
        };
        if queue_capacity == 0 || admit_batch == 0 {
            return None;
        }
        let qlen = r.usize()?;
        if qlen > queue_capacity || qlen > r.remaining() {
            return None;
        }
        let mut queue = VecDeque::with_capacity(qlen);
        for _ in 0..qlen {
            let professor = r.usize()?;
            if professor >= n {
                return None;
            }
            queue.push_back(Pending {
                professor,
                arrived: r.u64()?,
            });
        }
        let iflen = r.usize()?;
        if iflen != n {
            return None;
        }
        let mut in_flight = Vec::with_capacity(n);
        let mut in_flight_count = 0usize;
        for _ in 0..n {
            if r.bool()? {
                in_flight.push(Some(InFlight { arrived: r.u64()? }));
                in_flight_count += 1;
            } else {
                in_flight.push(None);
            }
        }
        let now = r.u64()?;
        let stats = ServiceStats {
            accepted: r.u64()?,
            shed: r.u64()?,
            coalesced: r.u64()?,
            completed: r.u64()?,
            unsolicited: r.u64()?,
            max_queue_depth: r.usize()?,
            queue_depth_sum: r.u64()?,
            churn_applied: r.u64()?,
            churn_rejected: r.u64()?,
        };
        let latency = LatencyHistogram::from_samples(r.u64_vec()?);
        let queue_wait = LatencyHistogram::from_samples(r.u64_vec()?);
        let alen = r.usize()?;
        if alen > r.remaining() {
            return None;
        }
        let mut admissions = Vec::with_capacity(alen);
        for _ in 0..alen {
            let t = r.u64()?;
            let pr = r.usize()?;
            if pr >= n {
                return None;
            }
            admissions.push((t, pr));
        }
        let churn_events = r.u64()?;
        if !source.restore_state(r.bytes()?) {
            return None;
        }
        if !r.is_empty() {
            return None;
        }
        Some(CoordinationService {
            sim,
            source,
            cfg: ServiceConfig {
                queue_capacity,
                admit_batch,
                overload,
                record_admissions,
                churn,
            },
            queue,
            in_flight,
            in_flight_count,
            now,
            stats,
            latency,
            queue_wait,
            poll_buf: Vec::new(),
            admissions,
            churn_events,
        })
    }

    /// Run `ticks` ticks, handing a fresh checkpoint blob to `sink` every
    /// `every` ticks — the crash/restore drill loop (and the shape a
    /// checkpoint-to-disk ops loop takes, via
    /// [`CoordinationService::checkpoint`] + `std::fs`).
    pub fn run_with_checkpoints(
        &mut self,
        ticks: u64,
        every: u64,
        mut sink: impl FnMut(u64, Vec<u8>),
    ) where
        C::State: StateCodec,
        TL::State: StateCodec,
    {
        assert!(every > 0, "zero checkpoint period");
        for _ in 0..ticks {
            self.tick();
            if self.now.is_multiple_of(every) {
                if let Some(blob) = self.checkpoint() {
                    sink(self.now, blob);
                }
            }
        }
    }
}

/// The common case: a CC1 service over the wave-token substrate with the
/// default daemon, an [`OpenLoopPolicy`] environment, and any registry
/// `mode`. CC1 is the natural serving algorithm — its professors have a
/// real `idle` state to accept requests from (the §5 fairness algorithms
/// assume professors request infinitely often, which is closed-loop by
/// construction).
///
/// # Errors
/// An unparsable `mode` label or an invalid engine configuration.
pub fn cc1_service(
    h: Arc<Hypergraph>,
    seed: u64,
    max_disc: u64,
    mode: &str,
    source: Box<dyn RequestSource>,
    cfg: ServiceConfig,
) -> Result<CoordinationService<sscc_core::Cc1, sscc_token::WaveToken>, ConfigError> {
    let n = h.n();
    let tl = sscc_token::WaveToken::new(&h);
    let sim = Sim::builder(h, sscc_core::Cc1::new(), tl)
        .seed(seed)
        .policy(Box::new(OpenLoopPolicy::new(n, max_disc)))
        .mode(mode)
        .build()?;
    Ok(CoordinationService::new(sim, source, cfg))
}

/// Thaw a [`CoordinationService::checkpoint`] taken from a [`cc1_service`].
/// `source` must be a freshly constructed transport of the same
/// configuration as the crashed service's (see
/// [`CoordinationService::restore_with`]).
pub fn cc1_service_restore(
    source: Box<dyn RequestSource>,
    bytes: &[u8],
) -> Option<CoordinationService<sscc_core::Cc1, sscc_token::WaveToken>> {
    CoordinationService::restore_with(
        |_| sscc_core::Cc1::new(),
        sscc_token::WaveToken::new,
        source,
        bytes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::channel;
    use crate::traffic::{Arrivals, TrafficGen};
    use sscc_hypergraph::generators;

    #[test]
    fn requests_complete_with_latency() {
        let h = Arc::new(generators::ring(12, 2));
        let (client, src) = channel();
        let mut svc = cc1_service(
            Arc::clone(&h),
            3,
            1,
            "par1",
            Box::new(src),
            ServiceConfig::default(),
        )
        .unwrap();
        // A meeting convenes only when *every* member of a committee is
        // requesting, so request complete (disjoint) committees: the pairs
        // {0,1}, {4,5}, {8,9} of ring(12, 2).
        for p in [0, 1, 4, 5, 8, 9] {
            client.request(p);
        }
        drop(client);
        assert!(svc.run_until_drained(20_000), "all requests served");
        assert_eq!(svc.stats().completed, 6);
        assert_eq!(svc.stats().shed, 0);
        let sum = svc.latency_summary().unwrap();
        assert!(sum.p50 >= 1 && sum.p99 >= sum.p50 && sum.max >= sum.p999);
        assert!(svc.sim().monitor().clean());
    }

    #[test]
    fn no_traffic_means_no_meetings() {
        let h = Arc::new(generators::ring(8, 2));
        let (_client, src) = channel();
        let mut svc = cc1_service(
            Arc::clone(&h),
            1,
            1,
            "par1",
            Box::new(src),
            ServiceConfig::default(),
        )
        .unwrap();
        svc.run(2_000);
        assert_eq!(svc.stats().completed, 0);
        assert_eq!(
            svc.sim().ledger().convened_count(),
            0,
            "open loop: no demand, no meetings"
        );
    }

    #[test]
    fn shed_policy_bounds_the_queue() {
        let h = Arc::new(generators::ring(16, 2));
        let gen = TrafficGen::new(&h, 5, Arrivals::Poisson { rate: 8.0 }, 3_000);
        let cfg = ServiceConfig {
            queue_capacity: 16,
            overload: OverloadPolicy::Shed,
            ..ServiceConfig::default()
        };
        let mut svc = cc1_service(Arc::clone(&h), 2, 1, "par1", Box::new(gen), cfg).unwrap();
        svc.run(3_000);
        assert!(svc.stats().shed > 0, "overload must shed");
        assert!(svc.stats().max_queue_depth <= 16);
        assert!(svc.stats().completed > 0);
        assert!(svc.sim().monitor().clean());
    }

    #[test]
    fn churny_workload_mutates_and_stays_clean() {
        let h = Arc::new(generators::ring(16, 2));
        let gen = TrafficGen::new(&h, 5, Arrivals::Poisson { rate: 1.0 }, 2_000);
        let cfg = ServiceConfig {
            churn: Some(ChurnConfig {
                period: 50,
                seed: 3,
                bias: MutationBias::Balanced,
            }),
            ..ServiceConfig::default()
        };
        let mut svc = cc1_service(Arc::clone(&h), 2, 1, "par1", Box::new(gen), cfg).unwrap();
        svc.run(2_000);
        let s = svc.stats();
        assert_eq!(
            s.churn_applied + s.churn_rejected,
            2_000 / 50,
            "one proposal per period"
        );
        assert!(s.churn_applied > 0, "some proposals land");
        assert!(s.completed > 0, "service keeps serving through churn");
        assert!(svc.sim().monitor().clean());
    }

    #[test]
    fn grow_only_churn_never_shrinks() {
        let h = Arc::new(generators::ring(12, 2));
        let m0 = h.m();
        let gen = TrafficGen::new(&h, 5, Arrivals::Poisson { rate: 0.5 }, 1_000);
        let cfg = ServiceConfig {
            churn: Some(ChurnConfig {
                period: 25,
                seed: 11,
                bias: MutationBias::GrowOnly,
            }),
            ..ServiceConfig::default()
        };
        let mut svc = cc1_service(Arc::clone(&h), 4, 1, "par1", Box::new(gen), cfg).unwrap();
        svc.run(1_000);
        assert!(svc.stats().churn_applied > 0);
        assert!(svc.sim().h().m() >= m0, "grow-only bias never removes");
    }

    #[test]
    fn crash_restore_drill_is_bit_identical() {
        let h = Arc::new(generators::ring(16, 2));
        let traffic =
            |h: &Hypergraph| TrafficGen::new(h, 9, Arrivals::Poisson { rate: 2.0 }, 2_000);
        let cfg = ServiceConfig {
            record_admissions: true,
            churn: Some(ChurnConfig {
                period: 97,
                seed: 5,
                bias: MutationBias::Balanced,
            }),
            ..ServiceConfig::default()
        };

        // Reference: the uninterrupted run.
        let mut reference =
            cc1_service(Arc::clone(&h), 8, 1, "par1", Box::new(traffic(&h)), cfg).unwrap();
        reference.run(3_000);

        // Drill: run, checkpoint, "crash", restore in a fresh stack, finish.
        let mut svc =
            cc1_service(Arc::clone(&h), 8, 1, "par1", Box::new(traffic(&h)), cfg).unwrap();
        svc.run(1_234);
        let blob = svc.checkpoint().expect("whole stack persists");
        drop(svc); // the crash
        let mut revived =
            cc1_service_restore(Box::new(traffic(&h)), &blob).expect("restore from blob");
        revived.run(3_000 - 1_234);

        assert_eq!(revived.ticks(), reference.ticks());
        assert_eq!(revived.stats(), reference.stats());
        assert_eq!(revived.admissions(), reference.admissions());
        assert_eq!(revived.latency_summary(), reference.latency_summary());
        assert_eq!(revived.queue_wait_summary(), reference.queue_wait_summary());
        assert_eq!(
            revived.sim().ledger().instances(),
            reference.sim().ledger().instances()
        );
        assert_eq!(
            revived.sim().monitor().violations(),
            reference.sim().monitor().violations()
        );
        assert_eq!(revived.sim().steps(), reference.sim().steps());
        assert_eq!(
            revived.sim().h(),
            reference.sim().h(),
            "churned topology travels"
        );

        // Corrupt blobs fail closed.
        let mut bad = blob.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(cc1_service_restore(Box::new(traffic(&h)), &bad).is_none());
        for cut in (0..blob.len()).step_by(61) {
            assert!(
                cc1_service_restore(Box::new(traffic(&h)), &blob[..cut]).is_none(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn live_transports_refuse_to_checkpoint() {
        let h = Arc::new(generators::ring(8, 2));
        let (_client, src) = channel();
        let mut svc = cc1_service(
            Arc::clone(&h),
            1,
            1,
            "par1",
            Box::new(src),
            ServiceConfig::default(),
        )
        .unwrap();
        svc.run(10);
        assert!(
            svc.checkpoint().is_none(),
            "an mpsc transport has no serialized form"
        );
    }

    #[test]
    fn defer_policy_never_sheds() {
        let h = Arc::new(generators::ring(16, 2));
        let gen = TrafficGen::new(&h, 5, Arrivals::Poisson { rate: 8.0 }, 1_000);
        let cfg = ServiceConfig {
            queue_capacity: 16,
            overload: OverloadPolicy::Defer,
            ..ServiceConfig::default()
        };
        let mut svc = cc1_service(Arc::clone(&h), 2, 1, "par1", Box::new(gen), cfg).unwrap();
        svc.run(2_000);
        assert_eq!(svc.stats().shed, 0, "defer backpressures, never drops");
        assert!(svc.stats().max_queue_depth <= 16);
        assert!(svc.stats().completed > 0);
    }
}
