//! The [`CoordinationService`]: admission, backpressure, latency.
//!
//! One service tick is: **ingest** (poll the transport into the bounded
//! admission queue) → **admit** (fold eligible requests into the engine's
//! [`RequestFlags`](sscc_core::RequestFlags) as `RequestIn` flips — the incremental engine turns
//! each into an `O(footprint)` `invalidate_env_of`, not a rescan) →
//! **step** the simulation → **complete** (match the step's
//! [`LedgerEvent::Convened`] events back to in-flight requests and record
//! their sojourns).
//!
//! Latency measurement points (all in ticks — one tick, one step attempt):
//!
//! ```text
//!  arrival ──▶ [admission queue] ──▶ RequestIn(p) set ──▶ ... ──▶ convene
//!     │                │                   │                        │
//!     └── sojourn ─────┼───────────────────┼────────────────────────┘
//!                      └── queue wait ─────┘
//! ```
//!
//! The simulation **must** run an [`OpenLoopPolicy`] (the convenience
//! constructors do): every other shipped policy re-derives `RequestIn`
//! each tick and would overwrite the admissions after one step.

use crate::source::{CoordRequest, RequestSource};
use sscc_core::algo::CommitteeAlgorithm;
use sscc_core::sim::Sim;
use sscc_core::status::{CommitteeView, Status};
use sscc_core::{ConfigError, LedgerEvent, OpenLoopPolicy};
use sscc_hypergraph::Hypergraph;
use sscc_metrics::LatencyHistogram;
use sscc_token::TokenLayer;
use std::collections::VecDeque;
use std::sync::Arc;

/// What to do when arrivals outrun the admission queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Stop polling the transport while the queue is full: requests back up
    /// in the transport (a bounded channel then pushes back on clients —
    /// the lossless choice, and the default).
    #[default]
    Defer,
    /// Keep polling and drop what does not fit, counting each drop in
    /// [`ServiceStats::shed`] (the bounded-latency choice).
    Shed,
}

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Bounded admission-queue capacity.
    pub queue_capacity: usize,
    /// Max admissions folded into the engine per tick (batching bound).
    pub admit_batch: usize,
    /// Overload behavior when the queue is full.
    pub overload: OverloadPolicy,
    /// Record every admission as a `(tick, professor)` pair (replay /
    /// equivalence testing; off by default — it grows with the run).
    pub record_admissions: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 1024,
            admit_batch: usize::MAX,
            overload: OverloadPolicy::Defer,
            record_admissions: false,
        }
    }
}

/// Cumulative service counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted into the admission queue.
    pub accepted: u64,
    /// Requests dropped by [`OverloadPolicy::Shed`].
    pub shed: u64,
    /// Requests merged into an already-in-flight request for the same
    /// professor (served by the same convene; only the first is timed).
    pub coalesced: u64,
    /// In-flight requests served by a convene event.
    pub completed: u64,
    /// Convene participations with no in-flight request behind them
    /// (arbitrary-boot debris; zero on a clean boot under open-loop load).
    pub unsolicited: u64,
    /// Largest admission-queue depth observed at a tick boundary.
    pub max_queue_depth: usize,
    /// Sum of per-tick queue depths (mean = `sum / ticks`).
    pub queue_depth_sum: u64,
}

/// Sojourn-distribution summary (units: service ticks).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Median sojourn.
    pub p50: u64,
    /// 99th-percentile sojourn.
    pub p99: u64,
    /// 99.9th-percentile sojourn.
    pub p999: u64,
    /// Mean sojourn.
    pub mean: f64,
    /// Largest sojourn.
    pub max: u64,
    /// Number of completed (timed) requests.
    pub completed: u64,
}

/// A queued request.
#[derive(Clone, Copy, Debug)]
struct Pending {
    professor: usize,
    arrived: u64,
}

/// An admitted request awaiting its convene.
#[derive(Clone, Copy, Debug)]
struct InFlight {
    arrived: u64,
}

/// The proxy front-end: owns the [`Sim`] and the transport, mediates every
/// external interaction (see the module docs for the tick pipeline).
pub struct CoordinationService<C: CommitteeAlgorithm, TL: TokenLayer> {
    sim: Sim<C, TL>,
    source: Box<dyn RequestSource>,
    cfg: ServiceConfig,
    queue: VecDeque<Pending>,
    /// Per-professor admitted-but-not-yet-convened request.
    in_flight: Vec<Option<InFlight>>,
    in_flight_count: usize,
    now: u64,
    stats: ServiceStats,
    latency: LatencyHistogram,
    queue_wait: LatencyHistogram,
    poll_buf: Vec<CoordRequest>,
    admissions: Vec<(u64, usize)>,
}

impl<C: CommitteeAlgorithm, TL: TokenLayer> CoordinationService<C, TL> {
    /// Wrap a simulation. The sim must have been built with an
    /// [`OpenLoopPolicy`] (see the module docs); use [`cc1_service`] for
    /// the common case.
    pub fn new(sim: Sim<C, TL>, source: Box<dyn RequestSource>, cfg: ServiceConfig) -> Self {
        assert!(cfg.queue_capacity > 0, "zero-capacity admission queue");
        assert!(cfg.admit_batch > 0, "zero admission batch");
        let n = sim.h().n();
        CoordinationService {
            sim,
            source,
            cfg,
            queue: VecDeque::new(),
            in_flight: vec![None; n],
            in_flight_count: 0,
            now: 0,
            stats: ServiceStats::default(),
            latency: LatencyHistogram::new(),
            queue_wait: LatencyHistogram::new(),
            poll_buf: Vec::new(),
            admissions: Vec::new(),
        }
    }

    /// One service tick: ingest → admit → step → complete. Returns whether
    /// the simulation made progress (`false` = stably terminal *and* no
    /// admission re-enabled it this tick; new arrivals can revive it).
    pub fn tick(&mut self) -> bool {
        self.now += 1;

        // Ingest: poll the transport into the bounded queue.
        let space = self.cfg.queue_capacity - self.queue.len();
        let budget = match self.cfg.overload {
            OverloadPolicy::Defer => space,
            OverloadPolicy::Shed => usize::MAX,
        };
        if budget > 0 {
            self.poll_buf.clear();
            self.source.poll(self.now, budget, &mut self.poll_buf);
            for r in self.poll_buf.drain(..) {
                debug_assert!(r.professor < self.in_flight.len(), "unknown professor");
                if self.queue.len() < self.cfg.queue_capacity {
                    self.queue.push_back(Pending {
                        professor: r.professor,
                        arrived: self.now,
                    });
                    self.stats.accepted += 1;
                } else {
                    self.stats.shed += 1;
                }
            }
        }
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
        self.stats.queue_depth_sum += self.queue.len() as u64;

        // Admit: one rotation over the queue, folding eligible requests
        // into the environment. Eligible = professor idle (CC1 consumes
        // `RequestIn` only from `idle`; a flip for a busy professor would
        // be cleared unconsumed by the next policy tick) and not already
        // in flight. FIFO order is preserved among the survivors.
        let mut admitted = 0usize;
        for _ in 0..self.queue.len() {
            let pend = self.queue.pop_front().expect("sized loop");
            let p = pend.professor;
            if self.in_flight[p].is_some() {
                self.stats.coalesced += 1;
                continue;
            }
            if admitted < self.cfg.admit_batch
                && self.sim.world().state(p).cc.status() == Status::Idle
            {
                self.sim.flags_mut().set_in(p, true);
                self.in_flight[p] = Some(InFlight {
                    arrived: pend.arrived,
                });
                self.in_flight_count += 1;
                self.queue_wait.record(self.now - pend.arrived);
                if self.cfg.record_admissions {
                    self.admissions.push((self.now, p));
                }
                admitted += 1;
            } else {
                self.queue.push_back(pend);
            }
        }

        // Step: the admissions drain into `invalidate_env_of` at step
        // start, so the engine sees them in this very step.
        let progressed = self.sim.step();

        // Complete: convene events serve their participants' requests.
        for ev in self.sim.last_events() {
            if let LedgerEvent::Convened(idx) = *ev {
                let inst = &self.sim.ledger().instances()[idx];
                for &p in &inst.participants {
                    match self.in_flight[p].take() {
                        Some(fl) => {
                            self.in_flight_count -= 1;
                            self.latency.record(self.now - fl.arrived);
                            self.stats.completed += 1;
                        }
                        None => self.stats.unsolicited += 1,
                    }
                }
            }
        }
        progressed
    }

    /// Run `ticks` service ticks.
    pub fn run(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.tick();
        }
    }

    /// Run until the transport is finished and every accepted request has
    /// been served (or `max_ticks` elapse). Returns `true` when fully
    /// drained.
    pub fn run_until_drained(&mut self, max_ticks: u64) -> bool {
        for _ in 0..max_ticks {
            if self.drained() {
                return true;
            }
            self.tick();
        }
        self.drained()
    }

    /// Transport finished, queue empty, nothing in flight.
    pub fn drained(&self) -> bool {
        self.source.finished() && self.queue.is_empty() && self.in_flight_count == 0
    }

    /// Service ticks elapsed.
    pub fn ticks(&self) -> u64 {
        self.now
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Admitted requests not yet served.
    pub fn in_flight(&self) -> usize {
        self.in_flight_count
    }

    /// The owned simulation (read-only: the service mediates mutation).
    pub fn sim(&self) -> &Sim<C, TL> {
        &self.sim
    }

    /// Inject a seeded transient fault into `fraction` of the processes of
    /// the running service — the campaign seam. Forwards to `Sim::strike`
    /// (observers repaired, not reset: latency history and meeting records
    /// span the disruption), then re-arms the `RequestIn` flag of every
    /// in-flight professor the fault left idle: the admitted request is
    /// still owed a convene, but the flag that carried it into the engine
    /// may have been consumed or scrambled. Returns the struck processes.
    pub fn inject_fault(&mut self, seed: u64, fraction: f64) -> Vec<usize> {
        let struck = self.sim.strike(seed, fraction);
        for p in 0..self.in_flight.len() {
            if self.in_flight[p].is_some() && self.sim.world().state(p).cc.status() == Status::Idle
            {
                self.sim.flags_mut().set_in(p, true);
            }
        }
        struck
    }

    /// Apply a topology mutation to the running service — forwards to
    /// `Sim::mutate` (incremental index/observer repair). The process set
    /// is fixed under mutation, so admission bookkeeping survives as-is.
    ///
    /// # Errors
    /// Anything `Hypergraph::apply_mutation` rejects; the service is
    /// untouched on error.
    pub fn apply_mutation(
        &mut self,
        mutation: &sscc_hypergraph::WorldMutation,
    ) -> Result<sscc_hypergraph::MutationDelta, sscc_hypergraph::MutationError> {
        self.sim.mutate(mutation)
    }

    /// Summarize the sojourn distribution (`None` before any completion).
    pub fn latency_summary(&mut self) -> Option<LatencySummary> {
        if self.latency.is_empty() {
            return None;
        }
        Some(LatencySummary {
            p50: self.latency.quantile(0.50)?,
            p99: self.latency.quantile(0.99)?,
            p999: self.latency.quantile(0.999)?,
            mean: self.latency.mean(),
            max: self.latency.max()?,
            completed: self.stats.completed,
        })
    }

    /// Queue-wait (arrival → admission) distribution.
    pub fn queue_wait(&mut self) -> &mut LatencyHistogram {
        &mut self.queue_wait
    }

    /// The admission log (`(tick, professor)` pairs), populated when
    /// [`ServiceConfig::record_admissions`] is on — the replay surface the
    /// scripted-equivalence tests drive.
    pub fn admissions(&self) -> &[(u64, usize)] {
        &self.admissions
    }
}

/// The common case: a CC1 service over the wave-token substrate with the
/// default daemon, an [`OpenLoopPolicy`] environment, and any registry
/// `mode`. CC1 is the natural serving algorithm — its professors have a
/// real `idle` state to accept requests from (the §5 fairness algorithms
/// assume professors request infinitely often, which is closed-loop by
/// construction).
///
/// # Errors
/// An unparsable `mode` label or an invalid engine configuration.
pub fn cc1_service(
    h: Arc<Hypergraph>,
    seed: u64,
    max_disc: u64,
    mode: &str,
    source: Box<dyn RequestSource>,
    cfg: ServiceConfig,
) -> Result<CoordinationService<sscc_core::Cc1, sscc_token::WaveToken>, ConfigError> {
    let n = h.n();
    let tl = sscc_token::WaveToken::new(&h);
    let sim = Sim::builder(h, sscc_core::Cc1::new(), tl)
        .seed(seed)
        .policy(Box::new(OpenLoopPolicy::new(n, max_disc)))
        .mode(mode)
        .build()?;
    Ok(CoordinationService::new(sim, source, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::channel;
    use crate::traffic::{Arrivals, TrafficGen};
    use sscc_hypergraph::generators;

    #[test]
    fn requests_complete_with_latency() {
        let h = Arc::new(generators::ring(12, 2));
        let (client, src) = channel();
        let mut svc = cc1_service(
            Arc::clone(&h),
            3,
            1,
            "par1",
            Box::new(src),
            ServiceConfig::default(),
        )
        .unwrap();
        // A meeting convenes only when *every* member of a committee is
        // requesting, so request complete (disjoint) committees: the pairs
        // {0,1}, {4,5}, {8,9} of ring(12, 2).
        for p in [0, 1, 4, 5, 8, 9] {
            client.request(p);
        }
        drop(client);
        assert!(svc.run_until_drained(20_000), "all requests served");
        assert_eq!(svc.stats().completed, 6);
        assert_eq!(svc.stats().shed, 0);
        let sum = svc.latency_summary().unwrap();
        assert!(sum.p50 >= 1 && sum.p99 >= sum.p50 && sum.max >= sum.p999);
        assert!(svc.sim().monitor().clean());
    }

    #[test]
    fn no_traffic_means_no_meetings() {
        let h = Arc::new(generators::ring(8, 2));
        let (_client, src) = channel();
        let mut svc = cc1_service(
            Arc::clone(&h),
            1,
            1,
            "par1",
            Box::new(src),
            ServiceConfig::default(),
        )
        .unwrap();
        svc.run(2_000);
        assert_eq!(svc.stats().completed, 0);
        assert_eq!(
            svc.sim().ledger().convened_count(),
            0,
            "open loop: no demand, no meetings"
        );
    }

    #[test]
    fn shed_policy_bounds_the_queue() {
        let h = Arc::new(generators::ring(16, 2));
        let gen = TrafficGen::new(&h, 5, Arrivals::Poisson { rate: 8.0 }, 3_000);
        let cfg = ServiceConfig {
            queue_capacity: 16,
            overload: OverloadPolicy::Shed,
            ..ServiceConfig::default()
        };
        let mut svc = cc1_service(Arc::clone(&h), 2, 1, "par1", Box::new(gen), cfg).unwrap();
        svc.run(3_000);
        assert!(svc.stats().shed > 0, "overload must shed");
        assert!(svc.stats().max_queue_depth <= 16);
        assert!(svc.stats().completed > 0);
        assert!(svc.sim().monitor().clean());
    }

    #[test]
    fn defer_policy_never_sheds() {
        let h = Arc::new(generators::ring(16, 2));
        let gen = TrafficGen::new(&h, 5, Arrivals::Poisson { rate: 8.0 }, 1_000);
        let cfg = ServiceConfig {
            queue_capacity: 16,
            overload: OverloadPolicy::Defer,
            ..ServiceConfig::default()
        };
        let mut svc = cc1_service(Arc::clone(&h), 2, 1, "par1", Box::new(gen), cfg).unwrap();
        svc.run(2_000);
        assert_eq!(svc.stats().shed, 0, "defer backpressures, never drops");
        assert!(svc.stats().max_queue_depth <= 16);
        assert!(svc.stats().completed > 0);
    }
}
