//! The transport seam: where requests enter the service.
//!
//! A [`RequestSource`] abstracts *where* join requests come from; the
//! service only ever pulls from this trait, so swapping the in-process
//! mpsc channel for a socket or IPC listener touches nothing above it
//! (the shape the Stabilis proxy exemplar takes: one mediating component
//! owns every interaction with the core engine).

use std::sync::mpsc;

/// One external request: professor `professor` wants to join a meeting.
///
/// The paper's environment model is per-professor (`RequestIn(p)`), so the
/// service's unit of admission is a professor, not a committee: which
/// committee serves the request is the algorithm's choice. A client that
/// wants a specific interaction requests every party of it (see
/// `examples/interaction_engine.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoordRequest {
    /// The requesting professor (process index).
    pub professor: usize,
}

/// A pull-based stream of incoming requests.
///
/// `poll` is called once per service tick with a delivery budget — the
/// backpressure seam: under [`OverloadPolicy::Defer`](crate::OverloadPolicy)
/// the budget is the admission queue's free space, and everything beyond it
/// stays queued *in the transport* (a bounded channel then pushes back on
/// the client; the deterministic generators model it with an internal
/// backlog).
pub trait RequestSource {
    /// Deliver up to `max` requests that have arrived by tick `now` into
    /// `out` (appending); returns how many were delivered. Undelivered
    /// requests must be retained for later polls.
    fn poll(&mut self, now: u64, max: usize, out: &mut Vec<CoordRequest>) -> usize;

    /// Will this source ever deliver again? `true` once it is both closed
    /// and drained — lets drivers distinguish "idle right now" from "done".
    fn finished(&self) -> bool {
        false
    }

    /// Append this source's mutable state to `out` for a service
    /// checkpoint. Default: `false` — "this transport is not persistable"
    /// (a live socket or channel has no meaningful serialized form; the
    /// deterministic generators in [`crate::traffic`] override both hooks).
    fn save_state(&self, out: &mut Vec<u8>) -> bool {
        let _ = out;
        false
    }

    /// Restore state captured by [`RequestSource::save_state`] into a
    /// freshly constructed source *of the same configuration*. Default:
    /// `false` — not persistable.
    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let _ = bytes;
        false
    }
}

/// In-process transport: an unbounded mpsc receiver, polled
/// non-destructively up to the service's budget. Created by [`channel`].
#[derive(Debug)]
pub struct ChannelSource {
    rx: mpsc::Receiver<CoordRequest>,
    /// One request pulled from the channel but not yet deliverable (budget
    /// exhausted on a previous poll).
    held: Option<CoordRequest>,
    disconnected: bool,
}

/// The client half of [`channel`]: cloneable, sendable to other threads.
#[derive(Clone, Debug)]
pub struct RequestClient {
    tx: mpsc::Sender<CoordRequest>,
}

impl RequestClient {
    /// Submit a join request for `professor`. Returns `false` if the
    /// service side has shut down.
    pub fn request(&self, professor: usize) -> bool {
        self.tx.send(CoordRequest { professor }).is_ok()
    }
}

/// An in-process request channel: hand the [`ChannelSource`] to the
/// service, keep the [`RequestClient`] (clone it freely across threads).
/// The source reports [`RequestSource::finished`] once every client is
/// dropped and the buffer is drained.
pub fn channel() -> (RequestClient, ChannelSource) {
    let (tx, rx) = mpsc::channel();
    (
        RequestClient { tx },
        ChannelSource {
            rx,
            held: None,
            disconnected: false,
        },
    )
}

impl RequestSource for ChannelSource {
    fn poll(&mut self, _now: u64, max: usize, out: &mut Vec<CoordRequest>) -> usize {
        let mut delivered = 0;
        while delivered < max {
            let r = match self.held.take() {
                Some(r) => r,
                None => match self.rx.try_recv() {
                    Ok(r) => r,
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        self.disconnected = true;
                        break;
                    }
                },
            };
            out.push(r);
            delivered += 1;
        }
        // A zero-budget poll must still not lose requests: nothing was
        // pulled above (the loop body never ran), so there is nothing to
        // hold. `held` is only populated here, when a pulled request meets
        // an exhausted budget — which cannot happen with this loop shape —
        // so it stays as the seam for future batched transports.
        delivered
    }

    fn finished(&self) -> bool {
        self.disconnected && self.held.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_delivers_in_order_with_budget() {
        let (client, mut src) = channel();
        for p in 0..5 {
            assert!(client.request(p));
        }
        let mut out = Vec::new();
        assert_eq!(src.poll(0, 2, &mut out), 2);
        assert_eq!(src.poll(0, 10, &mut out), 3);
        let got: Vec<usize> = out.iter().map(|r| r.professor).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(!src.finished(), "client still alive");
        drop(client);
        assert_eq!(src.poll(0, 10, &mut out), 0);
        assert!(src.finished(), "closed and drained");
    }

    #[test]
    fn zero_budget_poll_delivers_nothing() {
        let (client, mut src) = channel();
        client.request(3);
        let mut out = Vec::new();
        assert_eq!(src.poll(0, 0, &mut out), 0);
        assert!(out.is_empty());
        assert_eq!(src.poll(0, 1, &mut out), 1, "request not lost");
    }
}
