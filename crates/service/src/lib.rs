//! # sscc-service
//!
//! Coordination-as-a-service: a proxy-style front-end that owns a
//! long-running [`Sim`](sscc_core::sim::Sim) and mediates **all** external
//! interaction with it — the ROADMAP's open-loop serving tier.
//!
//! Every benchmark below this layer is closed-loop steps/s; production
//! traffic is open-loop. External clients submit *join requests* for
//! professors; the [`CoordinationService`] admits them into the engine's
//! [`RequestFlags`](sscc_core::RequestFlags) environment between steps
//! (through the incremental engine's `invalidate_env_of` path, so an
//! admission costs `O(footprint)`, not a rescan), applies backpressure when
//! arrivals outrun convergence, and measures each request's **sojourn**
//! from enqueue to the [`MeetingLedger`](sscc_core::MeetingLedger) convene
//! event that serves it.
//!
//! The layers:
//!
//! * [`source`] — the transport seam: a [`RequestSource`] trait with an
//!   in-process mpsc implementation ([`ChannelSource`]); a socket/IPC
//!   listener slots in behind the same trait.
//! * [`traffic`] — deterministic open-loop load: Poisson, bursty on/off and
//!   adversarial hotspot arrival processes, all counter-based like
//!   [`StochasticPolicy`](sscc_core::StochasticPolicy) (same seed → same
//!   arrival trace, regardless of how the service interleaves polls).
//! * [`service`] — the [`CoordinationService`] proper: bounded admission
//!   queue, shed/defer overload policy, per-request latency tracking.
//!
//! ```
//! use sscc_service::{cc1_service, ServiceConfig, TrafficGen, Arrivals};
//! use sscc_hypergraph::generators;
//! use std::sync::Arc;
//!
//! let h = Arc::new(generators::ring(16, 2));
//! let traffic = TrafficGen::new(&h, 7, Arrivals::Poisson { rate: 0.5 }, 2_000);
//! let mut svc = cc1_service(h, 42, 1, "par1", Box::new(traffic), ServiceConfig::default())
//!     .unwrap();
//! svc.run(4_000);
//! assert!(svc.stats().completed > 0);
//! assert!(svc.sim().monitor().clean());
//! ```

#![deny(missing_docs)]
#![deny(deprecated)]

pub mod service;
pub mod source;
pub mod traffic;

pub use service::{
    cc1_service, cc1_service_restore, ChurnConfig, CoordinationService, LatencySummary,
    OverloadPolicy, ServiceConfig, ServiceStats, SERVICE_CHECKPOINT_VERSION, SERVICE_MAGIC,
};
pub use source::{channel, ChannelSource, CoordRequest, RequestClient, RequestSource};
pub use traffic::{Arrivals, TrafficGen};
