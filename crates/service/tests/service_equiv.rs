//! The service layer's contract tests.
//!
//! Three layers of guarantees:
//!
//! 1. **Traffic determinism** — the arrival processes are counter-based,
//!    so the trace is a pure function of `(seed, params)`, invariant under
//!    poll interleaving, and distributionally sane (Poisson mean, burst
//!    phasing, hotspot concentration).
//! 2. **Service determinism** — same seed, same config → bit-identical
//!    ledger trace and latency quantiles (what makes the CI latency gate
//!    tick-exact).
//! 3. **Admission equivalence** — a service-driven run is *observationally
//!    identical* to a plain [`Sim`] whose [`RequestFlags`] are scripted
//!    with the service's own admission log: the proxy adds admission
//!    control and measurement, but never changes what the engine computes.

#![deny(deprecated)]

use proptest::prelude::*;
use sscc_core::sim::Sim;
use sscc_core::OpenLoopPolicy;
use sscc_hypergraph::generators;
use sscc_service::{
    cc1_service, Arrivals, OverloadPolicy, RequestSource, ServiceConfig, TrafficGen,
};
use std::sync::Arc;

// ---------------------------------------------------------------- traffic

#[test]
fn same_seed_same_trace_different_seed_different_trace() {
    let h = generators::ring(64, 2);
    let a = TrafficGen::new(&h, 11, Arrivals::Poisson { rate: 1.5 }, 500);
    let b = TrafficGen::new(&h, 11, Arrivals::Poisson { rate: 1.5 }, 500);
    assert_eq!(a.trace(), b.trace(), "seed determines the trace");
    let c = TrafficGen::new(&h, 12, Arrivals::Poisson { rate: 1.5 }, 500);
    assert_ne!(a.trace(), c.trace(), "seeds decorrelate");
}

#[test]
fn trace_is_invariant_under_poll_interleaving() {
    let h = generators::ring(32, 2);
    let mk = || TrafficGen::new(&h, 3, Arrivals::Poisson { rate: 2.0 }, 300);

    // One request at a time, polled far behind the clock.
    let mut trickle = mk();
    let mut got_trickle = Vec::new();
    let mut now = 0;
    while !trickle.finished() {
        now += 1;
        trickle.poll(now, 1, &mut got_trickle);
    }

    // Everything in one poll at the horizon.
    let mut bulk = mk();
    let mut got_bulk = Vec::new();
    bulk.poll(300, usize::MAX, &mut got_bulk);
    assert!(bulk.finished());

    assert_eq!(
        got_trickle, got_bulk,
        "poll budget and cadence never change the request stream"
    );
    assert_eq!(got_bulk.len(), mk().trace().len());
}

#[test]
fn poisson_mean_matches_rate() {
    let h = generators::ring(64, 2);
    let rate = 2.0;
    let horizon = 4_000;
    let g = TrafficGen::new(&h, 17, Arrivals::Poisson { rate }, horizon);
    let got = g.trace().len() as f64;
    let expect = rate * horizon as f64;
    assert!(
        (got - expect).abs() < 0.05 * expect,
        "Poisson sample mean {got} should be within 5% of {expect}"
    );
}

#[test]
fn bursty_arrivals_follow_the_phase() {
    let h = generators::ring(64, 2);
    let (on_len, off_len) = (50, 150);
    let g = TrafficGen::new(
        &h,
        9,
        Arrivals::Bursty {
            rate_on: 4.0,
            rate_off: 0.1,
            on_len,
            off_len,
        },
        4_000,
    );
    let (mut on, mut off) = (0u64, 0u64);
    for (t, _) in g.trace() {
        if t % (on_len + off_len) < on_len {
            on += 1;
        } else {
            off += 1;
        }
    }
    // The on-phase is 1/4 of the time but carries 40x the rate: arrivals
    // must be dominated by it.
    assert!(on > 8 * off, "on-phase {on} vs off-phase {off}");
    assert!(off > 0, "the off-phase still trickles");
}

#[test]
fn hotspot_concentrates_on_the_hot_pool() {
    let h = generators::ring(100, 2);
    let g = TrafficGen::new(
        &h,
        23,
        Arrivals::Hotspot {
            rate: 2.0,
            hot_fraction: 0.8,
        },
        2_000,
    );
    let pool: std::collections::BTreeSet<usize> = g.hot_pool().iter().copied().collect();
    assert!(
        pool.len() * 4 <= h.n(),
        "the pool is a minority of the professors (got {} of {})",
        pool.len(),
        h.n()
    );
    let trace = g.trace();
    let hot = trace.iter().filter(|(_, p)| pool.contains(p)).count();
    let frac = hot as f64 / trace.len() as f64;
    // 80% aimed + uniform spillover: well above any uniform baseline.
    assert!(
        frac > 0.7,
        "hot pool should absorb most arrivals, got {frac:.2}"
    );
}

// ---------------------------------------------------------------- service

fn run_service(
    seed: u64,
    mode: &str,
    record_admissions: bool,
) -> sscc_service::CoordinationService<sscc_core::Cc1, sscc_token::WaveToken> {
    let h = Arc::new(generators::ring(24, 2));
    let gen = TrafficGen::new(&h, seed, Arrivals::Poisson { rate: 0.4 }, 1_500);
    let cfg = ServiceConfig {
        record_admissions,
        ..ServiceConfig::default()
    };
    let mut svc = cc1_service(h, seed, 1, mode, Box::new(gen), cfg).unwrap();
    svc.run(2_000);
    svc
}

#[test]
fn service_runs_are_deterministic() {
    let a = run_service(5, "par1", false);
    let b = run_service(5, "par1", false);
    assert_eq!(
        a.sim().ledger().instances(),
        b.sim().ledger().instances(),
        "same seed, same meeting history"
    );
    assert_eq!(a.latency_summary(), b.latency_summary());
    assert_eq!(a.stats().completed, b.stats().completed);
    assert!(a.stats().completed > 0, "the run must exercise meetings");
    assert!(a.sim().monitor().clean());
}

#[test]
fn engine_mode_does_not_change_the_served_trajectory() {
    // The registry modes are trajectory-equivalent; the service on top
    // must preserve that (same admissions, same meetings, same sojourns).
    let base = run_service(5, "par1", false);
    for mode in ["incremental", "vl_daemon", "poolcommit"] {
        let other = run_service(5, mode, false);
        assert_eq!(
            base.sim().ledger().instances(),
            other.sim().ledger().instances(),
            "mode {mode} diverged"
        );
        assert_eq!(base.latency_summary(), other.latency_summary());
    }
}

// ------------------------------------------------------------- equivalence

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The proxy is observationally transparent: replaying the service's
    /// admission log into a bare `Sim` through `flags_mut` — the scripted
    /// interface that predates the service layer — yields a bit-identical
    /// meeting ledger. The service decides *when* a request reaches the
    /// engine (admission control), never *what* the engine does with it.
    #[test]
    fn service_equals_scripted_flag_flips(seed in 0u64..200) {
        let ticks = 1_200u64;
        let svc = {
            let h = Arc::new(generators::ring(16, 2));
            let gen = TrafficGen::new(&h, seed, Arrivals::Poisson { rate: 0.5 }, 1_000);
            let cfg = ServiceConfig {
                record_admissions: true,
                overload: OverloadPolicy::Defer,
                ..ServiceConfig::default()
            };
            let mut svc = cc1_service(h, seed, 1, "par1", Box::new(gen), cfg).unwrap();
            svc.run(ticks);
            svc
        };

        // The twin: the exact construction `cc1_service` performs, driven
        // by scripted flag flips instead of a transport.
        let h = Arc::new(generators::ring(16, 2));
        let n = h.n();
        let tl = sscc_token::WaveToken::new(&h);
        let mut twin = Sim::builder(h, sscc_core::Cc1::new(), tl)
            .seed(seed)
            .policy(Box::new(OpenLoopPolicy::new(n, 1)))
            .mode("par1")
            .build()
            .unwrap();
        let log = svc.admissions().to_vec();
        let mut at = 0usize;
        for t in 1..=ticks {
            while at < log.len() && log[at].0 == t {
                twin.flags_mut().set_in(log[at].1, true);
                at += 1;
            }
            twin.step();
        }
        prop_assert_eq!(at, log.len(), "every admission replayed");
        prop_assert_eq!(
            twin.ledger().instances(),
            svc.sim().ledger().instances(),
            "scripted replay must reproduce the meeting history exactly"
        );
        prop_assert!(svc.sim().monitor().clean());
        prop_assert!(twin.monitor().clean());
    }
}

// --------------------------------------------------------------- campaigns

/// Sustained faults and topology churn during a *service-driven* run: the
/// open-loop proxy keeps serving traffic while a seeded [`FaultCampaign`]
/// strikes processes and mutates committees between ticks. Safety holds
/// across every disruption, requests keep completing, and the whole
/// bombardment — schedule, surgery, admissions — is deterministic in the
/// seed.
#[test]
fn service_survives_fault_and_churn_campaigns() {
    use rand::{rngs::StdRng, SeedableRng as _};
    use sscc_hypergraph::random_mutation;
    use sscc_runtime::prelude::{CampaignEvent, FaultCampaign};

    let run = |seed: u64| {
        let h = Arc::new(generators::ring(24, 2));
        let gen = TrafficGen::new(&h, seed, Arrivals::Poisson { rate: 0.4 }, 2_500);
        let mut svc = cc1_service(
            h,
            seed,
            1,
            "vl_daemon",
            Box::new(gen),
            ServiceConfig::default(),
        )
        .unwrap();
        let mut campaign = FaultCampaign::new(seed, 300, 170);
        let (mut struck, mut mutated) = (0usize, 0usize);
        for tick in 1..=3_000u64 {
            for ev in campaign.poll(tick) {
                match ev {
                    CampaignEvent::Strike { seed } => {
                        svc.inject_fault(seed, 0.3).unwrap();
                        struck += 1;
                    }
                    CampaignEvent::Churn { seed } => {
                        let mut rng = StdRng::seed_from_u64(seed);
                        let proposal = random_mutation(svc.sim().h(), &mut rng);
                        if svc.apply_mutation(&proposal).is_ok() {
                            mutated += 1;
                        }
                    }
                }
            }
            svc.tick();
        }
        (svc, struck, mutated)
    };
    let (a, struck, mutated) = run(9);
    assert!(struck >= 10, "sustained faults: {struck}");
    assert!(mutated > 0, "churn applied: {mutated}");
    assert!(
        a.sim().monitor().clean(),
        "{:?}",
        a.sim().monitor().violations()
    );
    assert!(
        a.stats().completed > 0,
        "requests keep completing under fire"
    );
    let (b, ..) = run(9);
    assert_eq!(
        a.sim().ledger().instances(),
        b.sim().ledger().instances(),
        "campaign service runs are deterministic"
    );
    assert_eq!(a.latency_summary(), b.latency_summary());
}
