//! Offline stand-in for `proptest`.
//!
//! Supports exactly the surface the workspace's property tests use:
//! integer-range strategies, tuple strategies, [`Strategy::prop_map`], the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! and the `prop_assert*` macros. Cases are generated deterministically
//! (seeded from the test path and case index) — no shrinking, but a failing
//! case is reproducible across runs.

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the property named `path` — stable across
    /// runs, distinct across properties and cases.
    pub fn deterministic(path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in path.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// A value generator (proptest's Strategy, minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// One-line import mirroring proptest's prelude.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestRng,
    };
}

/// Assert inside a property (panics with context; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The property-test block macro: expands each
/// `#[test] fn name(pat in strategy, ...) { body }` into a `#[test]` that
/// runs the body over deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect bounds.
        #[test]
        fn in_bounds(x in 5u32..17, y in 0usize..3) {
            prop_assert!((5..17).contains(&x));
            prop_assert!(y < 3);
        }

        /// prop_map strategies apply their function.
        #[test]
        fn mapped(e in arb_even()) {
            prop_assert_eq!(e % 2, 0);
        }

        /// Tuple strategies generate componentwise.
        #[test]
        fn tuples((a, b) in (0u8..4, 10u8..14)) {
            prop_assert!(a < 4);
            prop_assert!((10..14).contains(&b));
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = TestRng::deterministic("x::y", 3);
        let mut r2 = TestRng::deterministic("x::y", 3);
        assert_eq!(r1.next_u64(), r2.next_u64());
        let mut r3 = TestRng::deterministic("x::y", 4);
        assert_ne!(r1.next_u64(), r3.next_u64());
    }
}
