//! Offline stand-in for `parking_lot`: wraps `std::sync::Mutex` behind
//! parking_lot's poison-free `lock()` signature (the only API the workspace
//! uses).

/// A mutex whose `lock` never returns a poison error (parking_lot
/// semantics: a panicked holder simply releases the lock).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
