//! Offline stand-in for `criterion`.
//!
//! Implements the subset of criterion's API the workspace benches use
//! (`benchmark_group`, `sample_size`, `bench_function`, `iter`,
//! `iter_batched`, the `criterion_group!`/`criterion_main!` macros) with a
//! plain wall-clock measurement loop: per benchmark, a warmup iteration
//! followed by `sample_size` timed samples, reporting min/mean. Passing
//! `--test` (as `cargo test --benches` does) runs each benchmark once.

use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box`.
pub use std::hint::black_box;

/// How batched inputs are grouped (accepted, ignored: every iteration is
/// set up individually here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level bench driver.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            test_mode: false,
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Build from the process arguments: a bare argument filters benchmark
    /// ids by substring; `--test` switches to one-shot smoke mode. Flags we
    /// do not understand (criterion compatibility flags like `--bench`) are
    /// ignored.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for a in std::env::args().skip(1) {
            if a == "--test" {
                c.test_mode = true;
            } else if !a.starts_with('-') {
                c.filter = Some(a);
            }
        }
        c
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            criterion: self,
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    criterion: &'c Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.samples = n;
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if let Some(flt) = &self.criterion.filter {
            if !full.contains(flt.as_str()) {
                return self;
            }
        }
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.samples
        };
        let mut b = Bencher {
            samples: Vec::with_capacity(samples),
            test_mode: self.criterion.test_mode,
        };
        // Warmup (not recorded) unless in test mode.
        if !self.criterion.test_mode {
            let mut w = Bencher {
                samples: Vec::new(),
                test_mode: true,
            };
            f(&mut w);
        }
        for _ in 0..samples {
            f(&mut b);
        }
        report(&full, &b.samples);
        self
    }

    /// End the group (parity with criterion; nothing to flush).
    pub fn finish(self) {}
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<60} (no samples)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{id:<60} min {:>12?}  mean {:>12?}  ({} samples)",
        min,
        mean,
        samples.len()
    );
}

/// Measurement scope handed to the bench closure.
pub struct Bencher {
    samples: Vec<Duration>,
    test_mode: bool,
}

impl Bencher {
    /// Time `routine` (one sample = one call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.push(start.elapsed());
    }

    /// Time `routine` on a fresh `setup()` input (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.push(start.elapsed());
    }

    fn push(&mut self, d: Duration) {
        if !self.test_mode || self.samples.is_empty() {
            self.samples.push(d);
        }
    }
}

/// Bundle bench functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::from_args();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
            default_samples: 5,
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).bench_function("noop", |b| {
                b.iter(|| ran += 1);
            });
            g.bench_function("batched", |b| {
                b.iter_batched(|| 21u32, |x| x * 2, BatchSize::SmallInput)
            });
            g.finish();
        }
        assert!(ran >= 1);
    }

    #[test]
    fn filter_skips_mismatches() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            test_mode: true,
            default_samples: 5,
        };
        let mut ran = false;
        c.benchmark_group("g")
            .bench_function("a", |b| b.iter(|| ran = true));
        assert!(!ran);
    }
}
