//! Offline stand-in for `crossbeam`: the workspace uses `channel::unbounded`
//! (the sweep harness), `thread::scope` (scoped fork/join), and
//! `sync::Parker` (the persistent worker pool's parking primitive).
//! `std::sync::mpsc` and `std::thread::scope` provide the same semantics —
//! clonable senders / receiver iteration ending when all senders drop, and
//! scoped threads that may borrow from the enclosing stack frame and are
//! joined before `scope` returns; `Parker` mirrors
//! `crossbeam_utils::sync::Parker`'s token semantics on a mutex + condvar.

/// Scoped threads (the `crossbeam::thread` API surface the workspace uses).
///
/// `scope(|s| { s.spawn(...); ... })` guarantees every spawned thread is
/// joined before `scope` returns, so closures may borrow locals. Backed by
/// `std::thread::scope` (stabilized after crossbeam pioneered the API).
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

/// Multi-producer channels.
pub mod channel {
    /// Sending half (clonable).
    pub type Sender<T> = std::sync::mpsc::Sender<T>;
    /// Receiving half (iterable; iteration ends when all senders drop).
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Thread-parking primitives (the `crossbeam_utils::sync::Parker` surface
/// the workspace uses).
///
/// A [`Parker`](sync::Parker) owns a *token*:
/// [`park`](sync::Parker::park) blocks the calling thread until the token
/// is set (by any [`Unparker`](sync::Unparker) handle) and consumes it.
/// Setting an already-set token is a no-op, and a token set *before* `park`
/// makes the next `park` return immediately — so a wakeup can never be
/// lost, only observed early (callers re-check their condition in a loop).
pub mod sync {
    use std::sync::{Arc, Condvar, Mutex};

    #[derive(Debug, Default)]
    struct Inner {
        token: Mutex<bool>,
        cv: Condvar,
    }

    /// The parking half: blocks the calling thread until unparked.
    #[derive(Debug, Default)]
    pub struct Parker {
        inner: Arc<Inner>,
    }

    /// The waking half (clonable, shareable across threads).
    #[derive(Clone, Debug)]
    pub struct Unparker {
        inner: Arc<Inner>,
    }

    impl Parker {
        /// A parker with no token pending.
        pub fn new() -> Self {
            Parker::default()
        }

        /// An [`Unparker`] handle that wakes this parker.
        pub fn unparker(&self) -> Unparker {
            Unparker {
                inner: Arc::clone(&self.inner),
            }
        }

        /// Block until the token is set, then consume it. Returns
        /// immediately (consuming the token) if it is already set.
        pub fn park(&self) {
            let mut token = self.inner.token.lock().unwrap();
            while !*token {
                token = self.inner.cv.wait(token).unwrap();
            }
            *token = false;
        }
    }

    impl Unparker {
        /// Set the token, waking the parked thread (if any). Idempotent.
        pub fn unpark(&self) {
            let mut token = self.inner.token.lock().unwrap();
            *token = true;
            drop(token);
            self.inner.cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u32, 2, 3, 4];
        let mut sums = [0u32; 2];
        super::thread::scope(|s| {
            for (chunk, out) in data.chunks(2).zip(sums.iter_mut()) {
                s.spawn(move || *out = chunk.iter().sum());
            }
        });
        assert_eq!(sums, [3, 7], "all workers joined before scope returned");
    }

    #[test]
    fn fan_in_then_drain() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap());
        tx.send(2).unwrap();
        drop(tx);
        let mut got: Vec<u32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn parker_token_set_before_park_is_not_lost() {
        let p = super::sync::Parker::new();
        p.unparker().unpark();
        p.park(); // returns immediately: the token was pending
    }

    #[test]
    fn parker_wakes_across_threads() {
        let p = super::sync::Parker::new();
        let u = p.unparker();
        let h = std::thread::spawn(move || u.unpark());
        p.park();
        h.join().unwrap();
    }
}
