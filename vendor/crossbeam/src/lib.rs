//! Offline stand-in for `crossbeam`: the workspace uses `channel::unbounded`
//! (the sweep harness) and `thread::scope` (the engine's parallel dirty-set
//! drain). `std::sync::mpsc` and `std::thread::scope` provide the same
//! semantics — clonable senders / receiver iteration ending when all senders
//! drop, and scoped threads that may borrow from the enclosing stack frame
//! and are joined before `scope` returns.

/// Scoped threads (the `crossbeam::thread` API surface the workspace uses).
///
/// `scope(|s| { s.spawn(...); ... })` guarantees every spawned thread is
/// joined before `scope` returns, so closures may borrow locals. Backed by
/// `std::thread::scope` (stabilized after crossbeam pioneered the API).
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

/// Multi-producer channels.
pub mod channel {
    /// Sending half (clonable).
    pub type Sender<T> = std::sync::mpsc::Sender<T>;
    /// Receiving half (iterable; iteration ends when all senders drop).
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u32, 2, 3, 4];
        let mut sums = [0u32; 2];
        super::thread::scope(|s| {
            for (chunk, out) in data.chunks(2).zip(sums.iter_mut()) {
                s.spawn(move || *out = chunk.iter().sum());
            }
        });
        assert_eq!(sums, [3, 7], "all workers joined before scope returned");
    }

    #[test]
    fn fan_in_then_drain() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap());
        tx.send(2).unwrap();
        drop(tx);
        let mut got: Vec<u32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
