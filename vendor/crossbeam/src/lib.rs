//! Offline stand-in for `crossbeam`: only `channel::unbounded` is used by
//! the workspace (the sweep harness), and `std::sync::mpsc` provides the
//! same semantics — clonable senders, receiver iteration ending when all
//! senders drop.

/// Multi-producer channels.
pub mod channel {
    /// Sending half (clonable).
    pub type Sender<T> = std::sync::mpsc::Sender<T>;
    /// Receiving half (iterable; iteration ends when all senders drop).
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fan_in_then_drain() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap());
        tx.send(2).unwrap();
        drop(tx);
        let mut got: Vec<u32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
