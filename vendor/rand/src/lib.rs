//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) API surface the workspace actually uses — seeded
//! [`rngs::StdRng`], the [`Rng`]/[`SeedableRng`] traits, and
//! [`seq::SliceRandom`] — backed by xoshiro256** seeded through SplitMix64.
//! All call sites only require *determinism per seed*, never a specific
//! stream, so the generator choice is free.

/// Dyn-safe core: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Sampling a value of `Self` from uniform bits (the `Standard`
/// distribution of real `rand`).
pub trait Standard {
    /// Sample uniformly from the full domain of `Self`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw a value from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full-domain inclusive range of a 64-bit type.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i32: u32, i64: u64, isize: usize);

/// The user-facing generator trait (generic conveniences over [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample from the full domain of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with success probability `p ∈ [0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }

    /// Uniform draw from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 never yields
            // four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state words (a persistence seam: a
        /// generator rebuilt with [`StdRng::from_state`] continues the
        /// exact stream this one would have produced).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from raw state words previously obtained
        /// with [`StdRng::state`]. The all-zero state is a fixed point of
        /// xoshiro and is remapped the same way seeding does.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling/shuffling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of rand's `SliceRandom` used by the workspace.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = r.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.random_range(0..3);
            assert!(y < 3);
            let z: u32 = r.random_range(0..=5);
            assert!(z <= 5);
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_slice() {
        let mut r = StdRng::seed_from_u64(5);
        let v = [1, 2, 3];
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut r).unwrap()));
        }
    }
}
